//! Shape inference: from layer hyper-parameters to the tensor sizes the
//! communication model and the simulator consume.

use hypar_tensor::FeatureDims;
use serde::{Deserialize, Serialize};

use crate::{Layer, LayerKind, Network, NetworkError};

/// Inferred tensor shapes and work counts for one weighted layer at a given
/// batch size.
///
/// Field conventions (paper §2.1):
/// * `input` is `F_l` per sample, **after** any implicit flattening a
///   fully-connected layer performs;
/// * `conv_out` is `F_{l+1}` per sample as *produced* by the layer —
///   **before** pooling — which is the tensor whose partial sums are
///   exchanged under model parallelism (Table 1);
/// * `junction_out` is the per-sample tensor actually handed to the next
///   layer — **after** pooling — which is the tensor redistributed between
///   layers (Table 2).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerShapes {
    /// Layer name, copied from the [`Layer`].
    pub name: String,
    /// Whether the layer is convolutional (`true`) or fully-connected.
    pub is_conv: bool,
    /// Mini-batch size `B` this inference was run for.
    pub batch: u64,
    /// Per-sample input feature map `F_l`.
    pub input: FeatureDims,
    /// Per-sample produced output `F_{l+1}` (pre-pooling).
    pub conv_out: FeatureDims,
    /// Per-sample junction output (post-pooling).
    pub junction_out: FeatureDims,
    /// Kernel height/width `K` for convolutions; `1` for fully-connected
    /// layers (whose weights behave as 1×1 kernels on flat maps).
    pub kernel_extent: u64,
    /// Elements in the kernel tensor `W_l` (= elements in `ΔW_l`).
    pub weight_elems: u64,
    /// Multiply-accumulate operations for the forward pass of the whole
    /// batch.
    pub macs_forward: u64,
    /// Element-wise operations (activation + pooling) for the forward pass
    /// of the whole batch.
    pub elementwise_ops: u64,
}

impl LayerShapes {
    /// Infers the shapes of a single layer applied to the per-sample
    /// `input` feature map at mini-batch size `batch`.
    ///
    /// This is the per-layer step of [`NetworkShapes::infer`], exposed so
    /// that non-chain IRs (the `hypar-graph` DAG) can run the identical
    /// inference node by node.
    ///
    /// # Errors
    ///
    /// Returns a [`NetworkError`] when the batch size is zero or the
    /// layer's hyper-parameters do not fit `input`.
    pub fn infer(layer: &Layer, input: FeatureDims, batch: u64) -> Result<Self, NetworkError> {
        if batch == 0 {
            return Err(NetworkError::ZeroBatch);
        }
        infer_layer(layer, input, batch)
    }

    /// Elements in the batched input feature map `F_l` (equals `A(E_l)`).
    #[must_use]
    pub fn f_in_elems(&self) -> u64 {
        self.batch * self.input.volume()
    }

    /// Elements in the batched produced output `F_{l+1}` pre-pooling
    /// (equals `A(E_{l+1})` on the producing side) — the model-parallel
    /// partial-sum tensor of Table 1.
    #[must_use]
    pub fn f_out_elems(&self) -> u64 {
        self.batch * self.conv_out.volume()
    }

    /// Elements in the batched junction tensor passed to the next layer
    /// (post-pooling) — the tensor redistributed by the Table 2
    /// transitions.
    #[must_use]
    pub fn junction_elems(&self) -> u64 {
        self.batch * self.junction_out.volume()
    }

    /// MACs for the error-backward pass (`E_{l+1} ⊗ W*`): symmetric with
    /// the forward convolution/matrix product.
    #[must_use]
    pub fn macs_backward(&self) -> u64 {
        self.macs_forward
    }

    /// MACs for the gradient computation (`F* ⊗ E_{l+1}`): symmetric with
    /// the forward pass.
    #[must_use]
    pub fn macs_gradient(&self) -> u64 {
        self.macs_forward
    }
}

/// The inferred shapes of every weighted layer of a network at a fixed
/// batch size: the single input everything else in this workspace consumes.
///
/// # Examples
///
/// ```
/// use hypar_models::{zoo, NetworkShapes};
///
/// let shapes = NetworkShapes::infer(&zoo::sfc(), 256)?;
/// // SFC is 784-8192-8192-8192-10.
/// assert_eq!(shapes.layer(0).weight_elems, 784 * 8192);
/// assert_eq!(shapes.layer(3).junction_elems(), 256 * 10);
/// # Ok::<(), hypar_models::NetworkError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkShapes {
    name: String,
    batch: u64,
    layers: Vec<LayerShapes>,
}

impl NetworkShapes {
    /// Runs shape inference over `net` for mini-batch size `batch`.
    ///
    /// # Errors
    ///
    /// Returns a [`NetworkError`] when the batch size is zero, the network
    /// is empty, or any layer's hyper-parameters do not fit the feature map
    /// flowing into it.
    pub fn infer(net: &Network, batch: u64) -> Result<Self, NetworkError> {
        if batch == 0 {
            return Err(NetworkError::ZeroBatch);
        }
        if net.layers().is_empty() {
            return Err(NetworkError::Empty);
        }
        let mut current = net.input();
        let mut layers = Vec::with_capacity(net.num_layers());
        for layer in net.layers() {
            let shapes = infer_layer(layer, current, batch)?;
            current = shapes.junction_out;
            layers.push(shapes);
        }
        Ok(Self {
            name: net.name().to_owned(),
            batch,
            layers,
        })
    }

    /// The network name these shapes were inferred from.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The mini-batch size `B`.
    #[must_use]
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// Number of weighted layers `L`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether there are no layers (never true for a validated network).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Per-layer shapes in network order.
    #[must_use]
    pub fn layers(&self) -> &[LayerShapes] {
        &self.layers
    }

    /// The shapes of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.len()`.
    #[must_use]
    pub fn layer(&self, l: usize) -> &LayerShapes {
        &self.layers[l]
    }

    /// Total kernel elements over all layers (the model size).
    #[must_use]
    pub fn total_weight_elems(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_elems).sum()
    }

    /// Total forward MACs for one step over all layers.
    #[must_use]
    pub fn total_macs_forward(&self) -> u64 {
        self.layers.iter().map(|l| l.macs_forward).sum()
    }

    /// Total MACs for one full training step: forward + backward +
    /// gradient.  The first layer propagates no error to the raw input, so
    /// its backward MACs are excluded.
    #[must_use]
    pub fn total_macs_training(&self) -> u64 {
        let fwd = self.total_macs_forward();
        let grad: u64 = self.layers.iter().map(|l| l.macs_gradient()).sum();
        let bwd: u64 = self.layers.iter().skip(1).map(|l| l.macs_backward()).sum();
        fwd + grad + bwd
    }
}

fn out_extent(input: u64, window: u64, stride: u64, padding: u64) -> u64 {
    (input + 2 * padding - window) / stride + 1
}

fn infer_layer(layer: &Layer, input: FeatureDims, batch: u64) -> Result<LayerShapes, NetworkError> {
    let name = layer.name().to_owned();
    let (input, conv_out, weight_elems, macs_per_sample, kernel_extent) = match *layer.kind() {
        LayerKind::Conv(spec) => {
            if spec.stride == 0 {
                return Err(NetworkError::ZeroStride { layer: name });
            }
            if spec.out_channels == 0 {
                return Err(NetworkError::ZeroDimension {
                    layer: name,
                    what: "out_channels",
                });
            }
            if spec.kernel == 0 {
                return Err(NetworkError::ZeroDimension {
                    layer: name,
                    what: "kernel",
                });
            }
            let padded_h = input.height + 2 * spec.padding;
            let padded_w = input.width + 2 * spec.padding;
            if spec.kernel > padded_h || spec.kernel > padded_w {
                return Err(NetworkError::KernelTooLarge {
                    layer: name,
                    kernel: spec.kernel,
                    input: padded_h.min(padded_w),
                });
            }
            let out_h = out_extent(input.height, spec.kernel, spec.stride, spec.padding);
            let out_w = out_extent(input.width, spec.kernel, spec.stride, spec.padding);
            let conv_out = FeatureDims::new(spec.out_channels, out_h, out_w);
            let weight_elems = spec.kernel * spec.kernel * input.channels * spec.out_channels;
            let macs = weight_elems * out_h * out_w;
            (input, conv_out, weight_elems, macs, spec.kernel)
        }
        LayerKind::FullyConnected(spec) => {
            if spec.out_features == 0 {
                return Err(NetworkError::ZeroDimension {
                    layer: name,
                    what: "out_features",
                });
            }
            let flat = input.flattened();
            let conv_out = FeatureDims::flat(spec.out_features);
            let weight_elems = flat.volume() * spec.out_features;
            (flat, conv_out, weight_elems, weight_elems, 1)
        }
    };

    let junction_out = match layer.pool() {
        None => conv_out,
        Some(pool) => {
            if pool.stride == 0 {
                return Err(NetworkError::ZeroStride { layer: name });
            }
            if pool.size > conv_out.height || pool.size > conv_out.width {
                return Err(NetworkError::PoolTooLarge {
                    layer: name,
                    pool: pool.size,
                    input: conv_out.height.min(conv_out.width),
                });
            }
            FeatureDims::new(
                conv_out.channels,
                out_extent(conv_out.height, pool.size, pool.stride, 0),
                out_extent(conv_out.width, pool.size, pool.stride, 0),
            )
        }
    };

    // Activation touches every produced element; pooling reads every
    // produced element once more.
    let act_ops = conv_out.volume();
    let pool_ops = if layer.pool().is_some() {
        conv_out.volume()
    } else {
        0
    };

    Ok(LayerShapes {
        name,
        is_conv: layer.kind().is_conv(),
        batch,
        input,
        conv_out,
        junction_out,
        kernel_extent,
        weight_elems,
        macs_forward: batch * macs_per_sample,
        elementwise_ops: batch * (act_ops + pool_ops),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConvSpec, PoolSpec};

    fn lenet() -> Network {
        Network::builder("lenet", FeatureDims::new(1, 28, 28))
            .conv("conv1", ConvSpec::valid(20, 5))
            .pool(PoolSpec::max2())
            .conv("conv2", ConvSpec::valid(50, 5))
            .pool(PoolSpec::max2())
            .fully_connected("fc1", 500)
            .fully_connected("fc2", 10)
            .build()
            .unwrap()
    }

    #[test]
    fn lenet_shapes_match_hand_computation() {
        let shapes = NetworkShapes::infer(&lenet(), 256).unwrap();
        let c1 = shapes.layer(0);
        assert_eq!(c1.conv_out, FeatureDims::new(20, 24, 24));
        assert_eq!(c1.junction_out, FeatureDims::new(20, 12, 12));
        assert_eq!(c1.weight_elems, 500);
        let c2 = shapes.layer(1);
        assert_eq!(c2.conv_out, FeatureDims::new(50, 8, 8));
        assert_eq!(c2.junction_out, FeatureDims::new(50, 4, 4));
        assert_eq!(c2.weight_elems, 25_000);
        let f1 = shapes.layer(2);
        assert_eq!(f1.input, FeatureDims::flat(800));
        assert_eq!(f1.weight_elems, 400_000);
        let f2 = shapes.layer(3);
        assert_eq!(f2.weight_elems, 5_000);
        // Caffe LeNet total: 430,500 parameters.
        assert_eq!(shapes.total_weight_elems(), 430_500);
    }

    #[test]
    fn batch_multiplies_activations_not_weights() {
        let s1 = NetworkShapes::infer(&lenet(), 1).unwrap();
        let s256 = NetworkShapes::infer(&lenet(), 256).unwrap();
        assert_eq!(s1.total_weight_elems(), s256.total_weight_elems());
        assert_eq!(s256.layer(0).f_out_elems(), 256 * s1.layer(0).f_out_elems());
        assert_eq!(s256.total_macs_forward(), 256 * s1.total_macs_forward());
    }

    #[test]
    fn zero_batch_is_rejected() {
        assert_eq!(
            NetworkShapes::infer(&lenet(), 0).unwrap_err(),
            NetworkError::ZeroBatch
        );
    }

    #[test]
    fn training_macs_exclude_first_layer_backward() {
        let shapes = NetworkShapes::infer(&lenet(), 1).unwrap();
        let fwd = shapes.total_macs_forward();
        let first_bwd = shapes.layer(0).macs_backward();
        assert_eq!(shapes.total_macs_training(), 3 * fwd - first_bwd);
    }

    #[test]
    fn strided_padded_conv_matches_alexnet_conv1() {
        let net = Network::builder("a1", FeatureDims::new(3, 227, 227))
            .conv(
                "conv1",
                ConvSpec {
                    out_channels: 96,
                    kernel: 11,
                    stride: 4,
                    padding: 0,
                },
            )
            .build()
            .unwrap();
        let shapes = NetworkShapes::infer(&net, 1).unwrap();
        assert_eq!(shapes.layer(0).conv_out, FeatureDims::new(96, 55, 55));
    }

    #[test]
    fn overlapping_pool_matches_alexnet() {
        let net = Network::builder("a1", FeatureDims::new(3, 227, 227))
            .conv(
                "conv1",
                ConvSpec {
                    out_channels: 96,
                    kernel: 11,
                    stride: 4,
                    padding: 0,
                },
            )
            .pool(PoolSpec::max(3, 2))
            .build()
            .unwrap();
        let shapes = NetworkShapes::infer(&net, 1).unwrap();
        assert_eq!(shapes.layer(0).junction_out, FeatureDims::new(96, 27, 27));
    }

    #[test]
    fn fc_flattens_conv_output() {
        let shapes = NetworkShapes::infer(&lenet(), 1).unwrap();
        assert_eq!(shapes.layer(2).input, FeatureDims::flat(50 * 4 * 4));
    }

    #[test]
    fn elementwise_ops_count_activation_and_pool() {
        let shapes = NetworkShapes::infer(&lenet(), 2).unwrap();
        let c1 = shapes.layer(0);
        // activation + pool on 20x24x24 produced elements, batch 2.
        assert_eq!(c1.elementwise_ops, 2 * 2 * 20 * 24 * 24);
        let f2 = shapes.layer(3);
        // no pool on fc2.
        assert_eq!(f2.elementwise_ops, 2 * 10);
    }
}
