//! The ten evaluation networks of the paper (§6.1, Table 3, Figure 5).
//!
//! * [`sfc`] and [`sconv`] are the paper's two "extreme" MNIST networks
//!   (Table 3): a pure fully-connected network and a pure convolutional
//!   network.
//! * [`lenet_c`] is the classic Caffe LeNet for MNIST and [`cifar_c`] the
//!   Caffe `cifar10_quick` network for CIFAR-10 (with 2×2 pooling; the
//!   paper does not list its exact variant — see EXPERIMENTS.md).
//! * [`alexnet`] is the single-tower AlexNet and [`vgg_a`]..[`vgg_e`] the
//!   VGG configurations A–E of Simonyan & Zisserman.
//!
//! # Examples
//!
//! ```
//! use hypar_models::zoo;
//!
//! assert_eq!(zoo::vgg_e().num_layers(), 19);
//! assert_eq!(zoo::by_name("Lenet-c").unwrap().num_layers(), 4);
//! assert_eq!(zoo::all().len(), 10);
//! ```

use hypar_tensor::FeatureDims;

use crate::{Activation, ConvSpec, Network, PoolSpec};

/// Names of the ten zoo networks, in the paper's presentation order.
pub const NAMES: [&str; 10] = [
    "SFC", "SCONV", "Lenet-c", "Cifar-c", "AlexNet", "VGG-A", "VGG-B", "VGG-C", "VGG-D", "VGG-E",
];

/// Looks a zoo network up by its paper name (see [`NAMES`]).
///
/// Matching is forgiving: case and punctuation are ignored, so `"VGG-A"`,
/// `"vgg_a"`, and `"vgga"` all resolve to the same network.
///
/// # Examples
///
/// ```
/// use hypar_models::zoo;
/// assert!(zoo::by_name("VGG-A").is_some());
/// assert!(zoo::by_name("vgg_a").is_some());
/// assert!(zoo::by_name("LENET-C").is_some());
/// assert!(zoo::by_name("ResNet-50").is_none());
/// ```
#[must_use]
pub fn by_name(name: &str) -> Option<Network> {
    let wanted = canonical(name);
    NAMES
        .iter()
        .find(|candidate| canonical(candidate) == wanted)
        .and_then(|candidate| by_canonical_name(candidate))
}

/// Reduces a network name to its canonical lookup form: ASCII alphanumerics
/// only, lowercased.
///
/// Exposed so that other registries (e.g. the branchy zoo in
/// `hypar-graph`) match names under the identical forgiving rule.
///
/// # Examples
///
/// ```
/// use hypar_models::zoo;
/// assert_eq!(zoo::canonical("VGG-A"), "vgga");
/// assert_eq!(zoo::canonical("ResNet_18"), "resnet18");
/// ```
#[must_use]
pub fn canonical(name: &str) -> String {
    name.chars()
        .filter(char::is_ascii_alphanumeric)
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

/// Exact-name constructor dispatch over [`NAMES`].  `None` for a name
/// outside the registry, so a registry/dispatch mismatch degrades to
/// "unknown network" instead of aborting the service.
fn by_canonical_name(name: &str) -> Option<Network> {
    match name {
        "SFC" => Some(sfc()),
        "SCONV" => Some(sconv()),
        "Lenet-c" => Some(lenet_c()),
        "Cifar-c" => Some(cifar_c()),
        "AlexNet" => Some(alexnet()),
        "VGG-A" => Some(vgg_a()),
        "VGG-B" => Some(vgg_b()),
        "VGG-C" => Some(vgg_c()),
        "VGG-D" => Some(vgg_d()),
        "VGG-E" => Some(vgg_e()),
        _ => None,
    }
}

/// All ten zoo networks in the paper's presentation order.
#[must_use]
pub fn all() -> Vec<Network> {
    NAMES
        .iter()
        .map(|n| by_name(n).expect("registry covers all names"))
        .collect()
}

/// `SFC`: the paper's pure fully-connected MNIST network,
/// `784-8192-8192-8192-10` (Table 3).
#[must_use]
pub fn sfc() -> Network {
    let mut b = Network::builder("SFC", FeatureDims::flat(784));
    b.fully_connected("fc1", 8192)
        .fully_connected("fc2", 8192)
        .fully_connected("fc3", 8192)
        .fully_connected("fc4", 10)
        .activation(Activation::None);
    // hypar-allow: panic-reach — static zoo literal validated by the Table 3 shape tests; no service input reaches this builder
    b.build().expect("SFC is a valid network")
}

/// `SCONV`: the paper's pure convolutional MNIST network,
/// `20@5×5, 50@5×5 (2×2 max pool), 50@5×5, 10@5×5 (2×2 max pool)`
/// (Table 3); its final feature map is exactly `1×1×10`.
#[must_use]
pub fn sconv() -> Network {
    let mut b = Network::builder("SCONV", FeatureDims::new(1, 28, 28));
    b.conv("conv1", ConvSpec::valid(20, 5))
        .conv("conv2", ConvSpec::valid(50, 5))
        .pool(PoolSpec::max2())
        .conv("conv3", ConvSpec::valid(50, 5))
        .conv("conv4", ConvSpec::valid(10, 5))
        .pool(PoolSpec::max2());
    // hypar-allow: panic-reach — static zoo literal validated by the Table 3 shape tests; no service input reaches this builder
    b.build().expect("SCONV is a valid network")
}

/// `Lenet-c`: the Caffe LeNet for MNIST — conv 20@5×5 + 2×2 pool,
/// conv 50@5×5 + 2×2 pool, fc 500, fc 10 (430,500 weights).
#[must_use]
pub fn lenet_c() -> Network {
    let mut b = Network::builder("Lenet-c", FeatureDims::new(1, 28, 28));
    b.conv("conv1", ConvSpec::valid(20, 5))
        .pool(PoolSpec::max2())
        .conv("conv2", ConvSpec::valid(50, 5))
        .pool(PoolSpec::max2())
        .fully_connected("fc1", 500)
        .fully_connected("fc2", 10);
    // hypar-allow: panic-reach — static zoo literal validated by the Table 3 shape tests; no service input reaches this builder
    b.build().expect("Lenet-c is a valid network")
}

/// `Cifar-c`: Caffe `cifar10_quick` for CIFAR-10 — three padded 5×5
/// convolutions (32, 32, 64 filters) each followed by 2×2 pooling, then
/// fc 64 and fc 10.
#[must_use]
pub fn cifar_c() -> Network {
    let mut b = Network::builder("Cifar-c", FeatureDims::new(3, 32, 32));
    b.conv("conv1", ConvSpec::same(32, 5))
        .pool(PoolSpec::max2())
        .conv("conv2", ConvSpec::same(32, 5))
        .pool(PoolSpec::max2())
        .conv("conv3", ConvSpec::same(64, 5))
        .pool(PoolSpec::max2())
        .fully_connected("fc1", 64)
        .fully_connected("fc2", 10);
    // hypar-allow: panic-reach — static zoo literal validated by the Table 3 shape tests; no service input reaches this builder
    b.build().expect("Cifar-c is a valid network")
}

/// `AlexNet`: the single-tower AlexNet for ImageNet (Krizhevsky 2012)
/// with 227×227 inputs, five convolutions and three fully-connected
/// layers.
#[must_use]
pub fn alexnet() -> Network {
    let mut b = Network::builder("AlexNet", FeatureDims::new(3, 227, 227));
    b.conv(
        "conv1",
        ConvSpec {
            out_channels: 96,
            kernel: 11,
            stride: 4,
            padding: 0,
        },
    )
    .pool(PoolSpec::max(3, 2))
    .conv("conv2", ConvSpec::same(256, 5))
    .pool(PoolSpec::max(3, 2))
    .conv("conv3", ConvSpec::same(384, 3))
    .conv("conv4", ConvSpec::same(384, 3))
    .conv("conv5", ConvSpec::same(256, 3))
    .pool(PoolSpec::max(3, 2))
    .fully_connected("fc1", 4096)
    .fully_connected("fc2", 4096)
    .fully_connected("fc3", 1000);
    // hypar-allow: panic-reach — static zoo literal validated by the Table 3 shape tests; no service input reaches this builder
    b.build().expect("AlexNet is a valid network")
}

/// Block sizes for one VGG configuration: `(convs_per_block, third_conv_is_1x1)`.
struct VggConfig {
    name: &'static str,
    /// For each of the five blocks: (number of convolutions, kernel size of
    /// the convolutions beyond the second — VGG-C uses 1×1 there).
    blocks: [(usize, u64); 5],
}

fn vgg(config: &VggConfig) -> Network {
    const CHANNELS: [u64; 5] = [64, 128, 256, 512, 512];
    let mut b = Network::builder(config.name, FeatureDims::new(3, 224, 224));
    for (block, &(convs, extra_kernel)) in config.blocks.iter().enumerate() {
        let channels = CHANNELS[block];
        for i in 0..convs {
            let kernel = if i >= 2 { extra_kernel } else { 3 };
            let name = if convs == 1 {
                format!("conv{}_1", block + 1)
            } else {
                format!("conv{}_{}", block + 1, i + 1)
            };
            b.conv(name, ConvSpec::same(channels, kernel));
        }
        b.pool(PoolSpec::max2());
    }
    b.fully_connected("fc1", 4096)
        .fully_connected("fc2", 4096)
        .fully_connected("fc3", 1000)
        .activation(Activation::None);
    // hypar-allow: panic-reach — static zoo literal validated by the Table 3 shape tests; no service input reaches this builder
    b.build().expect("VGG configurations are valid networks")
}

/// `VGG-A`: 8 convolutions + 3 fully-connected layers (11 weighted layers).
#[must_use]
pub fn vgg_a() -> Network {
    vgg(&VggConfig {
        name: "VGG-A",
        blocks: [(1, 3), (1, 3), (2, 3), (2, 3), (2, 3)],
    })
}

/// `VGG-B`: 10 convolutions + 3 fully-connected layers (13 weighted layers).
#[must_use]
pub fn vgg_b() -> Network {
    vgg(&VggConfig {
        name: "VGG-B",
        blocks: [(2, 3), (2, 3), (2, 3), (2, 3), (2, 3)],
    })
}

/// `VGG-C`: VGG-B with an extra 1×1 convolution in blocks 3–5 (16 weighted
/// layers).
#[must_use]
pub fn vgg_c() -> Network {
    vgg(&VggConfig {
        name: "VGG-C",
        blocks: [(2, 3), (2, 3), (3, 1), (3, 1), (3, 1)],
    })
}

/// `VGG-D` (VGG-16): VGG-C with 3×3 kernels throughout (16 weighted
/// layers, 138,344,128 weights).
#[must_use]
pub fn vgg_d() -> Network {
    vgg(&VggConfig {
        name: "VGG-D",
        blocks: [(2, 3), (2, 3), (3, 3), (3, 3), (3, 3)],
    })
}

/// `VGG-E` (VGG-19): four 3×3 convolutions in blocks 3–5 (19 weighted
/// layers).
#[must_use]
pub fn vgg_e() -> Network {
    vgg(&VggConfig {
        name: "VGG-E",
        blocks: [(2, 3), (2, 3), (4, 3), (4, 3), (4, 3)],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkShapes;

    #[test]
    fn weighted_layer_counts_match_paper() {
        // "the number of weighted layers of these models range from four to
        // nineteen" (paper abstract).
        let expected = [4usize, 4, 4, 5, 8, 11, 13, 16, 16, 19];
        for (name, want) in NAMES.iter().zip(expected) {
            let net = by_name(name).unwrap();
            assert_eq!(net.num_layers(), want, "{name}");
        }
    }

    #[test]
    fn sfc_is_pure_fc_and_sconv_pure_conv() {
        assert_eq!(sfc().num_conv(), 0);
        assert_eq!(sconv().num_fc(), 0);
    }

    #[test]
    fn sfc_weight_total() {
        let shapes = NetworkShapes::infer(&sfc(), 1).unwrap();
        // 784*8192 + 8192*8192 + 8192*8192 + 8192*10
        assert_eq!(shapes.total_weight_elems(), 140_722_176);
    }

    #[test]
    fn sconv_weight_total_and_output() {
        let shapes = NetworkShapes::infer(&sconv(), 1).unwrap();
        assert_eq!(shapes.total_weight_elems(), 100_500);
        // The network funnels exactly to the ten MNIST classes.
        assert_eq!(shapes.layer(3).junction_out.volume(), 10);
    }

    #[test]
    fn lenet_weight_total() {
        let shapes = NetworkShapes::infer(&lenet_c(), 1).unwrap();
        assert_eq!(shapes.total_weight_elems(), 430_500);
    }

    #[test]
    fn cifar_c_shapes() {
        let shapes = NetworkShapes::infer(&cifar_c(), 1).unwrap();
        assert_eq!(shapes.layer(0).junction_out.volume(), 32 * 16 * 16);
        assert_eq!(shapes.layer(3).input.volume(), 64 * 4 * 4);
        assert_eq!(shapes.total_weight_elems(), 145_376);
    }

    #[test]
    fn alexnet_feature_map_progression() {
        let shapes = NetworkShapes::infer(&alexnet(), 1).unwrap();
        let spatial: Vec<u64> = shapes
            .layers()
            .iter()
            .map(|l| l.junction_out.height)
            .collect();
        assert_eq!(spatial[..5], [27, 13, 13, 13, 6]);
        assert_eq!(shapes.layer(5).input.volume(), 256 * 6 * 6);
        assert_eq!(shapes.total_weight_elems(), 62_367_776);
    }

    #[test]
    fn vgg_d_is_vgg16() {
        let shapes = NetworkShapes::infer(&vgg_d(), 1).unwrap();
        assert_eq!(shapes.total_weight_elems(), 138_344_128);
        // fc1 consumes the flattened 7x7x512 block-5 output.
        assert_eq!(shapes.layer(13).input.volume(), 25_088);
    }

    #[test]
    fn vgg_a_weight_total() {
        let shapes = NetworkShapes::infer(&vgg_a(), 1).unwrap();
        assert_eq!(shapes.total_weight_elems(), 132_851_392);
    }

    #[test]
    fn vgg_c_has_1x1_convolutions() {
        let net = vgg_c();
        let conv3_3 = net.layers().iter().find(|l| l.name() == "conv3_3").unwrap();
        match conv3_3.kind() {
            crate::LayerKind::Conv(spec) => assert_eq!(spec.kernel, 1),
            crate::LayerKind::FullyConnected(_) => panic!("conv3_3 must be a convolution"),
        }
    }

    #[test]
    fn vgg_spatial_funnel_reaches_7x7() {
        for net in [vgg_a(), vgg_b(), vgg_c(), vgg_d(), vgg_e()] {
            let shapes = NetworkShapes::infer(&net, 1).unwrap();
            let last_conv = shapes.layers().iter().rfind(|l| l.is_conv).unwrap();
            assert_eq!(last_conv.junction_out.height, 7, "{}", net.name());
        }
    }

    #[test]
    fn registry_round_trips_names() {
        for name in NAMES {
            assert_eq!(by_name(name).unwrap().name(), name);
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn by_name_is_case_and_punctuation_insensitive() {
        for name in NAMES {
            let lowered = name.to_ascii_lowercase();
            let snaked = lowered.replace('-', "_");
            let squashed: String = lowered
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect();
            for variant in [lowered, snaked, squashed, name.to_ascii_uppercase()] {
                let net = by_name(&variant)
                    .unwrap_or_else(|| panic!("`{variant}` should resolve to {name}"));
                // The canonical paper name is preserved regardless of the
                // spelling used to look it up.
                assert_eq!(net.name(), name);
            }
        }
        assert!(by_name("vgg").is_none(), "prefixes must not match");
    }

    #[test]
    fn all_returns_ten_unique_networks() {
        let nets = all();
        assert_eq!(nets.len(), 10);
        let mut names: Vec<_> = nets.iter().map(|n| n.name().to_owned()).collect();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn final_classifier_layers_have_no_relu() {
        for net in [vgg_a(), vgg_e()] {
            let last = net.layers().last().unwrap();
            assert_eq!(last.activation(), Activation::None);
        }
    }
}
