//! Property tests for shape inference over randomly generated networks.

use hypar_models::{ConvSpec, Network, NetworkError, NetworkShapes, PoolSpec};
use hypar_tensor::FeatureDims;
use proptest::prelude::*;

/// Strategy: a random valid network of same-padded convolutions (with
/// occasional 2×2 pooling while the maps stay large enough) followed by a
/// fully-connected tail.
fn arb_network() -> impl Strategy<Value = Network> {
    (
        proptest::collection::vec(
            (
                1u64..64,
                prop_oneof![Just(1u64), Just(3), Just(5)],
                any::<bool>(),
            ),
            0..5,
        ),
        proptest::collection::vec(1u64..300, 1..4),
        (1u64..8, 8u64..64),
    )
        .prop_map(|(convs, fcs, (in_ch, in_hw))| {
            let mut b = Network::builder("prop", FeatureDims::new(in_ch, in_hw, in_hw));
            let mut hw = in_hw;
            for (i, &(out_ch, k, pool)) in convs.iter().enumerate() {
                b.conv(format!("conv{i}"), ConvSpec::same(out_ch, k));
                if pool && hw >= 4 {
                    b.pool(PoolSpec::max2());
                    hw /= 2;
                }
            }
            for (i, &out) in fcs.iter().enumerate() {
                b.fully_connected(format!("fc{i}"), out);
            }
            b.build().expect("generated networks are valid")
        })
}

proptest! {
    /// The junction chain is consistent: layer l+1 consumes exactly what
    /// layer l hands over (up to fc flattening, which preserves volume).
    #[test]
    fn junctions_chain(net in arb_network(), batch in 1u64..64) {
        let shapes = NetworkShapes::infer(&net, batch).unwrap();
        for l in 0..shapes.len() - 1 {
            prop_assert_eq!(
                shapes.layer(l).junction_out.volume(),
                shapes.layer(l + 1).input.volume(),
                "junction {} -> {}", l, l + 1
            );
        }
    }

    /// Pooling never grows a feature map.
    #[test]
    fn pooling_shrinks(net in arb_network(), batch in 1u64..64) {
        let shapes = NetworkShapes::infer(&net, batch).unwrap();
        for layer in shapes.layers() {
            prop_assert!(layer.junction_out.volume() <= layer.conv_out.volume());
        }
    }

    /// Weights are batch-independent; activations and MACs scale linearly.
    #[test]
    fn batch_scaling(net in arb_network(), batch in 2u64..64) {
        let base = NetworkShapes::infer(&net, 1).unwrap();
        let scaled = NetworkShapes::infer(&net, batch).unwrap();
        prop_assert_eq!(base.total_weight_elems(), scaled.total_weight_elems());
        prop_assert_eq!(base.total_macs_forward() * batch, scaled.total_macs_forward());
        for (a, b) in base.layers().iter().zip(scaled.layers()) {
            prop_assert_eq!(a.f_out_elems() * batch, b.f_out_elems());
            prop_assert_eq!(a.junction_elems() * batch, b.junction_elems());
        }
    }

    /// One training step costs at most 3x forward MACs (forward + backward
    /// + gradient), and strictly less when the first layer skips backward.
    #[test]
    fn training_mac_bound(net in arb_network()) {
        let shapes = NetworkShapes::infer(&net, 4).unwrap();
        let fwd = shapes.total_macs_forward();
        let total = shapes.total_macs_training();
        prop_assert!(total <= 3 * fwd);
        prop_assert!(total >= 2 * fwd);
    }

    /// MAC counts equal weight work times spatial extent: for fc layers,
    /// exactly batch x weights.
    #[test]
    fn fc_macs_are_weight_times_batch(net in arb_network(), batch in 1u64..32) {
        let shapes = NetworkShapes::infer(&net, batch).unwrap();
        for layer in shapes.layers().iter().filter(|l| !l.is_conv) {
            prop_assert_eq!(layer.macs_forward, batch * layer.weight_elems);
        }
    }
}

#[test]
fn oversized_pool_is_rejected() {
    let err = Network::builder("bad", FeatureDims::new(1, 6, 6))
        .conv("c", ConvSpec::valid(4, 5)) // 2x2 output
        .pool(PoolSpec::max2()) // fits exactly
        .build();
    assert!(err.is_ok());
    let err = Network::builder("bad", FeatureDims::new(1, 5, 5))
        .conv("c", ConvSpec::valid(4, 5)) // 1x1 output
        .pool(PoolSpec::max2())
        .build()
        .unwrap_err();
    assert!(matches!(err, NetworkError::PoolTooLarge { .. }));
}
