//! Drift attribution: turning "the hashes differ" into "*this* is what
//! changed".
//!
//! A bare `state_hash` mismatch says a build stopped reproducing a
//! pinned result but not why.  [`diff_responses`] walks two
//! [`PlanResponse`]s field by field — scalars, then the plan bit matrix
//! layer by layer and level by level, then the bit-exact simulation
//! numbers — and reports the **first** divergence, which is almost
//! always the root cause (everything downstream of a changed partition
//! bit changes with it).  [`diff_spans`] walks two trace trees in
//! lockstep (ignoring wall-clock durations, which never reproduce) and
//! names the first span whose structure or counters diverged, locating
//! the drift in the engine pipeline (`compute/refine`, …).
//! [`attribute`] combines both into the message CI prints, e.g.:
//!
//! ```text
//! drift in `compute/refine`, plan layer 7 (`conv4_2`) level 1: cost 4.12e9 -> 4.09e9
//! ```

use std::fmt;

use hypar_comm::Parallelism;
use hypar_engine::{PlanResponse, PlanTiming};
use hypar_sim::StepReport;
use hypar_telemetry::Span;

/// One attributed divergence between a recorded and a re-executed
/// response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DriftReport {
    /// Where the drift was located: a span path (`compute/refine`), a
    /// response field (`plan`, `simulation/step_time`), or both joined
    /// with `, `.
    pub location: String,
    /// What changed there, old value first (`cost 4.12e9 -> 4.09e9`).
    pub detail: String,
}

impl fmt::Display for DriftReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "drift in `{}`: {}", self.location, self.detail)
    }
}

fn report(location: impl Into<String>, detail: impl Into<String>) -> Option<DriftReport> {
    Some(DriftReport {
        location: location.into(),
        detail: detail.into(),
    })
}

fn bit_name(p: Parallelism) -> &'static str {
    match p {
        Parallelism::Data => "dp",
        Parallelism::Model => "mp",
    }
}

/// Compares two responses as *content* — everything the `state_hash`
/// covers, in hash order — and returns the first divergence.  The
/// non-reproducible fields (`cache_hit`, `timing`) are ignored, exactly
/// as the hash ignores them.
///
/// `None` means the responses are content-identical; their state hashes
/// must then agree too (pinned by test).
#[must_use]
pub fn diff_responses(old: &PlanResponse, new: &PlanResponse) -> Option<DriftReport> {
    if old.network != new.network {
        return report("network", format!("`{}` -> `{}`", old.network, new.network));
    }
    if old.batch != new.batch {
        return report("batch", format!("{} -> {}", old.batch, new.batch));
    }
    if old.levels != new.levels {
        return report("levels", format!("{} -> {}", old.levels, new.levels));
    }
    if old.accelerators != new.accelerators {
        return report(
            "accelerators",
            format!("{} -> {}", old.accelerators, new.accelerators),
        );
    }
    if old.strategy != new.strategy {
        return report(
            "strategy",
            format!("`{}` -> `{}`", old.strategy.name(), new.strategy.name()),
        );
    }
    if old.fingerprint != new.fingerprint {
        return report(
            "fingerprint",
            format!("`{}` -> `{}`", old.fingerprint, new.fingerprint),
        );
    }
    if let Some(drift) = diff_plans(old, new) {
        return Some(drift);
    }
    if old.total_comm_elems.to_bits() != new.total_comm_elems.to_bits() {
        return report(
            "total_comm_elems",
            format!(
                "cost {:.6e} -> {:.6e}",
                old.total_comm_elems, new.total_comm_elems
            ),
        );
    }
    if old.total_comm_bytes.to_bits() != new.total_comm_bytes.to_bits() {
        return report(
            "total_comm_bytes",
            format!(
                "cost {:.6e} -> {:.6e}",
                old.total_comm_bytes, new.total_comm_bytes
            ),
        );
    }
    if let Some(drift) = diff_simulations(old.simulation.as_ref(), new.simulation.as_ref()) {
        return Some(drift);
    }
    None
}

/// The plan half of [`diff_responses`]: the first layer/level whose
/// dp/mp bit differs, then the plan's aggregate communication cost.
fn diff_plans(old: &PlanResponse, new: &PlanResponse) -> Option<DriftReport> {
    let (old_plan, new_plan) = (&old.plan, &new.plan);
    if old_plan.network() != new_plan.network() {
        return report(
            "plan/network",
            format!("`{}` -> `{}`", old_plan.network(), new_plan.network()),
        );
    }
    if old_plan.layer_names() != new_plan.layer_names() {
        return report(
            "plan/layers",
            format!(
                "layer set changed ({} -> {} layers)",
                old_plan.num_layers(),
                new_plan.num_layers()
            ),
        );
    }
    if old_plan.num_levels() != new_plan.num_levels() {
        return report(
            "plan/levels",
            format!("{} -> {}", old_plan.num_levels(), new_plan.num_levels()),
        );
    }
    for h in 0..old_plan.num_levels() {
        for l in 0..old_plan.num_layers() {
            let (a, b) = (old_plan.choice(h, l), new_plan.choice(h, l));
            if a != b {
                return report(
                    "plan",
                    format!(
                        "layer {l} (`{}`) level {h}: {} -> {}",
                        old_plan.layer_names()[l],
                        bit_name(a),
                        bit_name(b)
                    ),
                );
            }
        }
    }
    if old_plan.total_comm_elems().to_bits() != new_plan.total_comm_elems().to_bits() {
        return report(
            "plan/cost",
            format!(
                "cost {:.6e} -> {:.6e}",
                old_plan.total_comm_elems(),
                new_plan.total_comm_elems()
            ),
        );
    }
    None
}

/// The simulation half of [`diff_responses`]: presence first, then every
/// report field bit-exactly, per-level byte counts by index.
fn diff_simulations(old: Option<&StepReport>, new: Option<&StepReport>) -> Option<DriftReport> {
    let (old, new) = match (old, new) {
        (None, None) => return None,
        (Some(_), None) => return report("simulation", "report present -> absent"),
        (None, Some(_)) => return report("simulation", "report absent -> present"),
        (Some(old), Some(new)) => (old, new),
    };
    let scalars = [
        ("step_time", old.step_time.value(), new.step_time.value()),
        ("energy", old.energy.value(), new.energy.value()),
        (
            "compute_energy",
            old.compute_energy.value(),
            new.compute_energy.value(),
        ),
        (
            "dram_energy",
            old.dram_energy.value(),
            new.dram_energy.value(),
        ),
        (
            "link_energy",
            old.link_energy.value(),
            new.link_energy.value(),
        ),
        ("comm_bytes", old.comm_bytes.value(), new.comm_bytes.value()),
        ("dram_bytes", old.dram_bytes.value(), new.dram_bytes.value()),
        (
            "compute_busy",
            old.compute_busy.value(),
            new.compute_busy.value(),
        ),
        ("link_busy", old.link_busy.value(), new.link_busy.value()),
        (
            "dram_footprint_bytes",
            old.dram_footprint_bytes.value(),
            new.dram_footprint_bytes.value(),
        ),
    ];
    for (name, a, b) in scalars {
        if a.to_bits() != b.to_bits() {
            return report(format!("simulation/{name}"), format!("{a:.6e} -> {b:.6e}"));
        }
    }
    if old.comm_bytes_per_level.len() != new.comm_bytes_per_level.len() {
        return report(
            "simulation/comm_bytes_per_level",
            format!(
                "{} -> {} levels",
                old.comm_bytes_per_level.len(),
                new.comm_bytes_per_level.len()
            ),
        );
    }
    for (h, (a, b)) in old
        .comm_bytes_per_level
        .iter()
        .zip(&new.comm_bytes_per_level)
        .enumerate()
    {
        if a.value().to_bits() != b.value().to_bits() {
            return report(
                format!("simulation/comm_bytes_per_level[{h}]"),
                format!("level {h}: {:.6e} -> {:.6e}", a.value(), b.value()),
            );
        }
    }
    if old.num_accelerators != new.num_accelerators {
        return report(
            "simulation/num_accelerators",
            format!("{} -> {}", old.num_accelerators, new.num_accelerators),
        );
    }
    if old.trace_summary != new.trace_summary {
        return report(
            "simulation/trace_summary",
            format!(
                "{} tasks / {} resources -> {} tasks / {} resources",
                old.trace_summary.tasks,
                old.trace_summary.resources,
                new.trace_summary.tasks,
                new.trace_summary.resources
            ),
        );
    }
    None
}

/// Walks two span trees in lockstep and reports the first *structural*
/// divergence: a renamed span, a changed counter, or a different child
/// list.  Wall-clock durations are ignored — they never reproduce and
/// are not part of the determinism contract.
///
/// The report's location is the `/`-joined path from the root to the
/// divergent span (e.g. `plan/compute/refine`).
#[must_use]
pub fn diff_spans(old: &Span, new: &Span) -> Option<DriftReport> {
    diff_spans_at(old, new, "", 0)
}

/// Span trees deeper than this stop the structural diff.  The recorder
/// never nests spans anywhere near this far, so a replayed trace that
/// hits the bound is itself reported as drift instead of letting a
/// hostile golden file recurse the stack away.
const MAX_DIFF_DEPTH: usize = 64;

fn diff_spans_at(old: &Span, new: &Span, parent: &str, depth: usize) -> Option<DriftReport> {
    if depth >= MAX_DIFF_DEPTH {
        let location = if parent.is_empty() { "(root)" } else { parent };
        return report(
            location,
            format!("span tree exceeds the diff depth bound of {MAX_DIFF_DEPTH}"),
        );
    }
    if old.name != new.name {
        let location = if parent.is_empty() { "(root)" } else { parent };
        return report(location, format!("span `{}` -> `{}`", old.name, new.name));
    }
    let path = if parent.is_empty() {
        old.name.clone()
    } else {
        format!("{parent}/{}", old.name)
    };
    for (name, value) in &old.counters {
        match new.counter(name) {
            Some(v) if v == *value => {}
            Some(v) => {
                return report(&path, format!("counter `{name}`: {value} -> {v}"));
            }
            None => return report(&path, format!("counter `{name}` disappeared")),
        }
    }
    for (name, value) in &new.counters {
        if old.counter(name).is_none() {
            return report(&path, format!("counter `{name}` appeared (= {value})"));
        }
    }
    for (child_old, child_new) in old.children.iter().zip(&new.children) {
        if let Some(drift) = diff_spans_at(child_old, child_new, &path, depth + 1) {
            return Some(drift);
        }
    }
    if old.children.len() != new.children.len() {
        let names = |spans: &[Span]| {
            spans
                .iter()
                .map(|s| s.name.clone())
                .collect::<Vec<_>>()
                .join(",")
        };
        return report(
            &path,
            format!(
                "children [{}] -> [{}]",
                names(&old.children),
                names(&new.children)
            ),
        );
    }
    None
}

/// Full attribution for one replayed request: locate the drift in the
/// span tree when both sides carry a trace, describe it from the
/// response content, and fall back to a raw hash message when the
/// content diff cannot see the change (which would itself indicate a
/// hash-coverage bug).
#[must_use]
pub fn attribute(
    old: &PlanResponse,
    new: &PlanResponse,
    old_timing: Option<&PlanTiming>,
    new_timing: Option<&PlanTiming>,
) -> Option<DriftReport> {
    let span_drift = match (old_timing, new_timing) {
        (Some(old_t), Some(new_t)) => diff_spans(&old_t.trace, &new_t.trace),
        _ => None,
    };
    let content_drift = diff_responses(old, new);
    match (span_drift, content_drift) {
        (Some(span), Some(content)) => report(
            format!("{}, {}", span.location, content.location),
            content.detail,
        ),
        (None, Some(content)) => Some(content),
        (Some(span), None) => Some(span),
        (None, None) => {
            if old.state_hash == new.state_hash {
                None
            } else {
                report(
                    "state_hash",
                    format!(
                        "`{}` -> `{}` with no visible content change (hash coverage bug?)",
                        old.state_hash, new.state_hash
                    ),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypar_engine::{PlanEngine, PlanRequest};

    fn planned(simulate: bool) -> PlanResponse {
        let engine = PlanEngine::new();
        let request = PlanRequest::zoo("lenet_c").levels(2).simulate(simulate);
        engine.plan(&request).expect("zoo request plans")
    }

    #[test]
    fn identical_responses_have_no_drift() {
        let response = planned(true);
        assert_eq!(diff_responses(&response, &response.clone()), None);
        assert_eq!(attribute(&response, &response.clone(), None, None), None);
    }

    #[test]
    fn a_flipped_plan_bit_is_attributed_to_its_layer_and_level() {
        let old = planned(false);
        let mut new = old.clone();
        let mut levels: Vec<Vec<Parallelism>> = new.plan.levels().to_vec();
        let flipped = match levels[1][2] {
            Parallelism::Data => Parallelism::Model,
            Parallelism::Model => Parallelism::Data,
        };
        levels[1][2] = flipped;
        new.plan = hypar_core::HierarchicalPlan::from_parts(
            new.plan.network().to_owned(),
            new.plan.layer_names().to_vec(),
            levels,
            new.plan.total_comm_elems(),
        );
        let drift = diff_responses(&old, &new).expect("bit flip must be drift");
        assert_eq!(drift.location, "plan");
        assert!(
            drift.detail.contains("layer 2") && drift.detail.contains("level 1"),
            "{drift}"
        );
        // The canonical hash must see the same change the differ sees.
        assert_ne!(old.compute_state_hash(), new.compute_state_hash());
    }

    #[test]
    fn a_one_ulp_cost_change_is_attributed_in_scientific_notation() {
        let old = planned(false);
        let mut new = old.clone();
        new.plan = hypar_core::HierarchicalPlan::from_parts(
            new.plan.network().to_owned(),
            new.plan.layer_names().to_vec(),
            new.plan.levels().to_vec(),
            f64::from_bits(new.plan.total_comm_elems().to_bits() + 1),
        );
        let drift = diff_responses(&old, &new).expect("one-ulp cost drift must be caught");
        assert_eq!(drift.location, "plan/cost");
        assert!(
            drift.detail.contains("cost") && drift.detail.contains('e'),
            "{drift}"
        );
        assert_ne!(old.compute_state_hash(), new.compute_state_hash());
    }

    #[test]
    fn simulation_drift_names_the_field_and_level() {
        let old = planned(true);
        let mut new = old.clone();
        {
            let sim = new.simulation.as_mut().unwrap();
            let perturbed = sim.comm_bytes_per_level[1].value() * (1.0 + 1e-12);
            sim.comm_bytes_per_level[1] = hypar_tensor::Bytes(perturbed);
        }
        let drift = diff_responses(&old, &new).expect("per-level sim drift must be caught");
        assert_eq!(drift.location, "simulation/comm_bytes_per_level[1]");
        assert_ne!(old.compute_state_hash(), new.compute_state_hash());
    }

    #[test]
    fn span_diff_ignores_durations_but_catches_structure() {
        let make = |refine_flips: u64, with_extra: bool, duration: u64| {
            let mut refine = Span {
                name: "refine".to_owned(),
                duration_ns: duration,
                counters: vec![("flips".to_owned(), refine_flips)],
                children: vec![],
            };
            if with_extra {
                refine.children.push(Span {
                    name: "extra".to_owned(),
                    duration_ns: 1,
                    counters: vec![],
                    children: vec![],
                });
            }
            Span {
                name: "plan".to_owned(),
                duration_ns: duration * 2,
                counters: vec![],
                children: vec![Span {
                    name: "compute".to_owned(),
                    duration_ns: duration,
                    counters: vec![],
                    children: vec![refine],
                }],
            }
        };
        // Durations differ wildly: not drift.
        assert_eq!(
            diff_spans(&make(3, false, 10), &make(3, false, 99_999)),
            None
        );
        // A counter change is drift, located by path.
        let drift = diff_spans(&make(3, false, 10), &make(4, false, 10)).unwrap();
        assert_eq!(drift.location, "plan/compute/refine");
        assert!(drift.detail.contains("flips"), "{drift}");
        // A structural change is drift too.
        let drift = diff_spans(&make(3, false, 10), &make(3, true, 10)).unwrap();
        assert_eq!(drift.location, "plan/compute/refine");
        assert!(drift.detail.contains("children"), "{drift}");
    }

    #[test]
    fn attribute_joins_span_location_with_content_detail() {
        let engine = PlanEngine::new();
        let request = PlanRequest::zoo("lenet_c").levels(2).trace(true);
        let old = engine.plan(&request).unwrap();
        // Fresh engine so the second run recomputes (and re-traces) fully.
        let engine2 = PlanEngine::new();
        let mut new = engine2.plan(&request).unwrap();
        assert_eq!(old.state_hash, new.state_hash, "same build must reproduce");

        new.plan = hypar_core::HierarchicalPlan::from_parts(
            new.plan.network().to_owned(),
            new.plan.layer_names().to_vec(),
            new.plan.levels().to_vec(),
            f64::from_bits(new.plan.total_comm_elems().to_bits() + 1),
        );
        new.state_hash = new.compute_state_hash();
        let drift = attribute(&old, &new, old.timing.as_ref(), new.timing.as_ref())
            .expect("perturbed cost must be attributed");
        assert_eq!(drift.location, "plan/cost");
        assert!(drift.detail.contains("cost"), "{drift}");
    }
}
