//! Golden manifests: every scenario's canonical state hashes, pinned in
//! the repository and verified in CI.
//!
//! `scenarios/golden.json` holds one [`GoldenEntry`] per scenario file —
//! the per-request `state_hash` sequence (or `error:<message>` for
//! requests the engine rejects) in request order.  [`capture`] runs each
//! scenario three ways before trusting a hash: cold on a fresh engine,
//! hot against the warm cache, and recomputed on a second fresh engine.
//! Any disagreement among the three is *intra-build* nondeterminism
//! (e.g. a float-order bug in the parallel planner) and fails the
//! capture with an attributed report, so a manifest can only ever pin
//! reproducible numbers.  [`verify`] re-captures and diffs against a
//! pinned manifest; `hypar-replay golden --bless` rewrites it.

use std::fmt;
use std::path::Path;

use hypar_engine::{scenario, PlanEngine};
use serde::{Deserialize, Serialize};

use crate::drift::attribute;

/// Schema tag stamped into every manifest.
pub const MANIFEST_SCHEMA: &str = "hypar-golden/v1";

/// The pinned hash sequence of one scenario file.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenEntry {
    /// Scenario file name (base name, so the manifest is stable across
    /// checkouts), e.g. `lenet_levels.json`.
    pub file: String,
    /// The scenario's `name` field, for readable reports.
    pub name: String,
    /// One string per request, in request order: the response's
    /// `state_hash`, or `error:<message>` for typed rejections (those
    /// are pinned behaviour too).
    pub hashes: Vec<String>,
}

/// A full manifest: schema tag plus entries sorted by file name, so
/// re-blessing is byte-stable regardless of argument order.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenManifest {
    /// Always [`MANIFEST_SCHEMA`].
    pub schema: String,
    /// Per-scenario pinned hashes, sorted by `file`.
    pub scenarios: Vec<GoldenEntry>,
}

impl GoldenManifest {
    /// The entry for a scenario file, if pinned.
    #[must_use]
    pub fn entry(&self, file: &str) -> Option<&GoldenEntry> {
        self.scenarios.iter().find(|e| e.file == file)
    }
}

/// Why capturing or verifying golden hashes failed.
#[derive(Clone, Debug, PartialEq)]
pub enum GoldenError {
    /// A scenario file failed to load or parse.
    Scenario(String),
    /// The same build produced different hashes across cold/hot/fresh
    /// runs of one request: intra-build nondeterminism, attributed.
    NonDeterministic {
        /// Scenario file the request came from.
        file: String,
        /// Request index within the scenario.
        index: usize,
        /// Which pair of runs disagreed (`cold/hot` or `cold/fresh`).
        runs: &'static str,
        /// The attributed first divergence.
        report: String,
    },
    /// Manifest I/O or parse failure.
    Manifest(String),
}

impl fmt::Display for GoldenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoldenError::Scenario(message) => write!(f, "scenario error: {message}"),
            GoldenError::NonDeterministic {
                file,
                index,
                runs,
                report,
            } => write!(
                f,
                "{file} request {index}: non-deterministic across {runs} runs: {report}"
            ),
            GoldenError::Manifest(message) => write!(f, "manifest error: {message}"),
        }
    }
}

impl std::error::Error for GoldenError {}

/// One divergence between a pinned manifest and the current build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GoldenDrift {
    /// Scenario file.
    pub file: String,
    /// Request index within the scenario (`None` for whole-scenario
    /// problems such as a changed request count or a missing pin).
    pub index: Option<usize>,
    /// What changed (`<old> -> <new>`, or a structural message).
    pub detail: String,
}

impl fmt::Display for GoldenDrift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(index) => write!(f, "{} request {}: {}", self.file, index, self.detail),
            None => write!(f, "{}: {}", self.file, self.detail),
        }
    }
}

fn file_key(path: &Path) -> String {
    path.file_name().map_or_else(
        || path.display().to_string(),
        |n| n.to_string_lossy().into_owned(),
    )
}

/// The per-request hash strings of one scenario run.
fn run_hashes(report: &scenario::ScenarioReport) -> Vec<String> {
    report
        .entries
        .iter()
        .map(|entry| match (&entry.response, &entry.error) {
            (Some(response), _) => response.state_hash.clone(),
            (None, Some(error)) => format!("error:{error}"),
            (None, None) => "error:<empty entry>".to_owned(),
        })
        .collect()
}

/// Captures the golden hashes of the given scenario files, triple-running
/// each (cold, hot, fresh engine) and failing on any intra-build
/// disagreement.
///
/// # Errors
///
/// Returns [`GoldenError::Scenario`] for unloadable files and
/// [`GoldenError::NonDeterministic`] when a request does not reproduce
/// within this build.
pub fn capture(paths: &[impl AsRef<Path>]) -> Result<GoldenManifest, GoldenError> {
    let mut entries = Vec::new();
    for path in paths {
        let path = path.as_ref();
        let file = file_key(path);
        let loaded = scenario::load(path).map_err(|e| GoldenError::Scenario(e.to_string()))?;

        let engine = PlanEngine::new();
        let cold = scenario::run(&engine, &loaded);
        let hot = scenario::run(&engine, &loaded);
        let fresh = scenario::run(&PlanEngine::new(), &loaded);

        for (runs, other) in [("cold/hot", &hot), ("cold/fresh", &fresh)] {
            if let Some((index, report)) = first_disagreement(&cold, other) {
                return Err(GoldenError::NonDeterministic {
                    file: file.clone(),
                    index,
                    runs,
                    report,
                });
            }
        }

        entries.push(GoldenEntry {
            file,
            name: loaded.name.clone(),
            hashes: run_hashes(&cold),
        });
    }
    entries.sort_by(|a, b| a.file.cmp(&b.file));
    Ok(GoldenManifest {
        schema: MANIFEST_SCHEMA.to_owned(),
        scenarios: entries,
    })
}

/// The first request where two same-build runs disagree, with full
/// response-level attribution (both sides are in hand).
fn first_disagreement(
    a: &scenario::ScenarioReport,
    b: &scenario::ScenarioReport,
) -> Option<(usize, String)> {
    for (index, (ea, eb)) in a.entries.iter().zip(&b.entries).enumerate() {
        match (&ea.response, &eb.response) {
            (Some(ra), Some(rb)) => {
                if ra.state_hash != rb.state_hash {
                    let report = attribute(ra, rb, ra.timing.as_ref(), rb.timing.as_ref())
                        .map_or_else(
                            || format!("`{}` -> `{}`", ra.state_hash, rb.state_hash),
                            |r| r.to_string(),
                        );
                    return Some((index, report));
                }
            }
            (None, None) => {
                if ea.error != eb.error {
                    return Some((index, format!("error `{:?}` -> `{:?}`", ea.error, eb.error)));
                }
            }
            (Some(ra), None) => {
                return Some((
                    index,
                    format!("plan `{}` -> error `{:?}`", ra.state_hash, eb.error),
                ));
            }
            (None, Some(rb)) => {
                return Some((
                    index,
                    format!("error `{:?}` -> plan `{}`", ea.error, rb.state_hash),
                ));
            }
        }
    }
    None
}

/// Verifies scenario files against a pinned manifest: re-captures (which
/// itself triple-runs) and diffs hash-by-hash.  Returns every
/// divergence; an empty vector means the build reproduces the manifest.
///
/// # Errors
///
/// Propagates [`capture`]'s errors — a non-deterministic build cannot be
/// meaningfully diffed against a pin.
pub fn verify(
    manifest: &GoldenManifest,
    paths: &[impl AsRef<Path>],
) -> Result<Vec<GoldenDrift>, GoldenError> {
    let current = capture(paths)?;
    let mut drifts = Vec::new();
    for entry in &current.scenarios {
        let Some(pinned) = manifest.entry(&entry.file) else {
            drifts.push(GoldenDrift {
                file: entry.file.clone(),
                index: None,
                detail: "not pinned in the manifest (run `hypar-replay golden --bless` to add it)"
                    .to_owned(),
            });
            continue;
        };
        if pinned.hashes.len() != entry.hashes.len() {
            drifts.push(GoldenDrift {
                file: entry.file.clone(),
                index: None,
                detail: format!(
                    "request count {} -> {}",
                    pinned.hashes.len(),
                    entry.hashes.len()
                ),
            });
            continue;
        }
        for (index, (old, new)) in pinned.hashes.iter().zip(&entry.hashes).enumerate() {
            if old != new {
                drifts.push(GoldenDrift {
                    file: entry.file.clone(),
                    index: Some(index),
                    detail: format!("`{old}` -> `{new}`"),
                });
            }
        }
    }
    Ok(drifts)
}

/// Parses a manifest from JSON text, rejecting unknown schemas.
///
/// # Errors
///
/// Returns [`GoldenError::Manifest`] on malformed JSON or a schema
/// mismatch.
pub fn parse_manifest(text: &str) -> Result<GoldenManifest, GoldenError> {
    let manifest: GoldenManifest =
        serde_json::from_str(text).map_err(|e| GoldenError::Manifest(e.to_string()))?;
    if manifest.schema != MANIFEST_SCHEMA {
        return Err(GoldenError::Manifest(format!(
            "unsupported schema `{}` (expected `{MANIFEST_SCHEMA}`)",
            manifest.schema
        )));
    }
    Ok(manifest)
}

/// Loads a manifest file from disk.
///
/// # Errors
///
/// Returns [`GoldenError::Manifest`] for unreadable or malformed files.
pub fn load_manifest(path: &Path) -> Result<GoldenManifest, GoldenError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| GoldenError::Manifest(format!("{}: {e}", path.display())))?;
    parse_manifest(&text)
}

/// Serializes a manifest as pretty JSON (with a trailing newline, so the
/// blessed file is diff-friendly).
#[must_use]
pub fn manifest_to_json(manifest: &GoldenManifest) -> String {
    let mut text = serde_json::to_string_pretty(manifest).unwrap_or_else(|_| "{}".to_owned());
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_scenario(dir: &Path, file: &str, body: &str) -> std::path::PathBuf {
        let path = dir.join(file);
        std::fs::write(&path, body).unwrap();
        path
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hypar-golden-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const SCENARIO: &str = r#"{
        "name": "golden-test",
        "requests": [
            {"network": "lenet_c", "levels": 2},
            {"network": "lenet_c", "levels": 2},
            {"network": "no-such-net"},
            {"network": "sfc", "levels": 3, "simulate": true}
        ]
    }"#;

    #[test]
    fn capture_verify_round_trip_is_clean_and_stable() {
        let dir = temp_dir("roundtrip");
        let path = write_scenario(&dir, "a.json", SCENARIO);
        let manifest = capture(&[&path]).unwrap();
        assert_eq!(manifest.schema, MANIFEST_SCHEMA);
        assert_eq!(manifest.scenarios.len(), 1);
        let entry = &manifest.scenarios[0];
        assert_eq!(entry.file, "a.json");
        assert_eq!(entry.hashes.len(), 4);
        // Duplicate requests pin identical hashes; rejections pin errors.
        assert_eq!(entry.hashes[0], entry.hashes[1]);
        assert!(entry.hashes[2].starts_with("error:"), "{:?}", entry.hashes);

        // Verifying immediately after blessing is clean, twice.
        assert_eq!(verify(&manifest, &[&path]).unwrap(), vec![]);
        assert_eq!(verify(&manifest, &[&path]).unwrap(), vec![]);

        // The JSON round-trips through the schema gate.
        let reparsed = parse_manifest(&manifest_to_json(&manifest)).unwrap();
        assert_eq!(reparsed, manifest);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_perturbed_pin_is_reported_per_request() {
        let dir = temp_dir("perturb");
        let path = write_scenario(&dir, "a.json", SCENARIO);
        let mut manifest = capture(&[&path]).unwrap();
        manifest.scenarios[0].hashes[3] = "f".repeat(16);
        let drifts = verify(&manifest, &[&path]).unwrap();
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].file, "a.json");
        assert_eq!(drifts[0].index, Some(3));
        assert!(drifts[0].detail.contains("->"), "{}", drifts[0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn an_unpinned_scenario_fails_verification() {
        let dir = temp_dir("unpinned");
        let path = write_scenario(&dir, "a.json", SCENARIO);
        let manifest = GoldenManifest {
            schema: MANIFEST_SCHEMA.to_owned(),
            scenarios: vec![],
        };
        let drifts = verify(&manifest, &[&path]).unwrap();
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].detail.contains("not pinned"), "{}", drifts[0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let err =
            parse_manifest(r#"{"schema": "hypar-golden/v999", "scenarios": []}"#).unwrap_err();
        assert!(err.to_string().contains("unsupported schema"), "{err}");
    }
}
