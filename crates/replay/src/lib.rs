//! Golden replay & determinism observability for the HyPar planning
//! engine.
//!
//! The engine stamps every [`hypar_engine::PlanResponse`] with a
//! canonical `state_hash` — an order-independent, float-bit-exact digest
//! of the response's content (plan bits, costs, simulation numbers;
//! never `cache_hit` or wall-clock timing).  This crate is everything
//! built on top of that digest:
//!
//! * [`replay`] — re-execute a `--record`ed JSONL session
//!   ([`hypar_engine::RecordEntry`] lines) against the current build and
//!   diff every outcome;
//! * [`golden`] — capture and verify `scenarios/golden.json`, the
//!   manifest pinning every scenario's hash sequence (CI runs the
//!   verification twice consecutively; `--bless` regenerates the pins);
//! * [`drift`] — when hashes disagree, walk the span trees and response
//!   content to name the **first** divergence: the pipeline span
//!   (`compute/refine`), the plan bit (`layer 7 (…) level 1: dp -> mp`),
//!   or the cost (`cost 4.12e9 -> 4.09e9`).
//!
//! # Workflow
//!
//! ```text
//! hypar-engine --scenarios scenarios/lenet_levels.json --record run.jsonl
//! hypar-replay replay run.jsonl            # re-execute + diff
//! hypar-replay golden scenarios/*.json     # verify against golden.json
//! hypar-replay golden --bless scenarios/*.json   # re-pin after a
//!                                                # deliberate change
//! ```
//!
//! # Examples
//!
//! ```
//! use hypar_engine::{PlanEngine, PlanRequest, RecordEntry};
//! use hypar_replay::replay::replay;
//!
//! // Record two requests...
//! let engine = PlanEngine::new();
//! let request = PlanRequest::zoo("lenet_c").levels(2);
//! let log = vec![RecordEntry::from_outcome(&request, &engine.plan(&request))];
//!
//! // ...and replay them bit-identically on a fresh engine.
//! let summary = replay(&PlanEngine::new(), &log);
//! assert!(summary.is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod drift;
pub mod golden;
pub mod replay;

pub use drift::{attribute, diff_responses, diff_spans, DriftReport};
pub use golden::{GoldenDrift, GoldenEntry, GoldenError, GoldenManifest, MANIFEST_SCHEMA};
pub use replay::{ReplaySummary, ReplayedEntry, Verdict};
