//! The `hypar-replay` binary: golden replay and drift attribution.
//!
//! ```text
//! hypar-replay replay LOG...
//!     re-execute recorded JSONL sessions (hypar-engine --record) against
//!     the current build; exit non-zero on any drift, printing the first
//!     divergent span / plan bit / cost per drifted entry
//!
//! hypar-replay golden [--bless] [--manifest PATH] SCENARIO...
//!     verify scenario files against the pinned manifest (default
//!     scenarios/golden.json); --bless regenerates the pins instead.
//!     Files named golden.json are skipped, so `scenarios/*.json` globs
//!     work unmodified.  Every capture triple-runs each scenario
//!     (cold / warm-cache / fresh engine) and fails on intra-build
//!     nondeterminism even when blessing.
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hypar_engine::{record, PlanEngine};
use hypar_replay::{golden, replay};

fn usage() -> &'static str {
    "usage: hypar-replay replay LOG...\n       \
     hypar-replay golden [--bless] [--manifest PATH] SCENARIO..."
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("replay") => run_replay(&args.map(PathBuf::from).collect::<Vec<_>>()),
        Some("golden") => run_golden(args),
        Some("--help" | "-h") => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n{}", usage());
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn run_replay(paths: &[PathBuf]) -> ExitCode {
    if paths.is_empty() {
        eprintln!("replay expects at least one log file\n{}", usage());
        return ExitCode::FAILURE;
    }
    let mut clean = true;
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("{}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let entries = match record::parse_log(&text) {
            Ok(entries) => entries,
            Err(err) => {
                eprintln!("{}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        };
        // One engine per log: the replay session shares a cache across
        // entries exactly like the recorded session did.
        let summary = replay::replay(&PlanEngine::new(), &entries);
        println!("{}: {summary}", path.display());
        clean &= summary.is_clean();
    }
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_golden(args: impl Iterator<Item = String>) -> ExitCode {
    let mut bless = false;
    let mut manifest_path = PathBuf::from("scenarios/golden.json");
    let mut scenario_paths: Vec<PathBuf> = Vec::new();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bless" => bless = true,
            "--manifest" => match args.next() {
                Some(path) => manifest_path = PathBuf::from(path),
                None => {
                    eprintln!("--manifest expects a file path\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
            path => scenario_paths.push(PathBuf::from(path)),
        }
    }
    // The manifest lives next to the scenarios, so globs pick it up;
    // it is a pin list, not a workload.
    scenario_paths.retain(|p| !is_manifest_file(p));
    if scenario_paths.is_empty() {
        eprintln!("golden expects at least one scenario file\n{}", usage());
        return ExitCode::FAILURE;
    }

    if bless {
        let manifest = match golden::capture(&scenario_paths) {
            Ok(manifest) => manifest,
            Err(err) => {
                eprintln!("bless failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(err) = std::fs::write(&manifest_path, golden::manifest_to_json(&manifest)) {
            eprintln!("failed to write {}: {err}", manifest_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "blessed {} scenario(s) into {}",
            manifest.scenarios.len(),
            manifest_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let manifest = match golden::load_manifest(&manifest_path) {
        Ok(manifest) => manifest,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::FAILURE;
        }
    };
    match golden::verify(&manifest, &scenario_paths) {
        Ok(drifts) if drifts.is_empty() => {
            println!(
                "{} scenario(s) reproduce {}",
                scenario_paths.len(),
                manifest_path.display()
            );
            ExitCode::SUCCESS
        }
        Ok(drifts) => {
            for drift in &drifts {
                eprintln!("{drift}");
            }
            eprintln!(
                "{} drift(s) against {} — if intentional, re-pin with \
                 `hypar-replay golden --bless`",
                drifts.len(),
                manifest_path.display()
            );
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("{err}");
            ExitCode::FAILURE
        }
    }
}

fn is_manifest_file(path: &Path) -> bool {
    path.file_name().is_some_and(|n| n == "golden.json")
}
