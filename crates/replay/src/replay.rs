//! Log replay: re-execute a recorded JSONL session against the current
//! build and diff every outcome.
//!
//! Each [`hypar_engine::RecordEntry`] is replayed through a
//! [`PlanEngine`] in log order (sharing one cache, like the original
//! session).  An entry matches when the recorded and replayed state
//! hashes agree (or both sides rejected the request with the same
//! message).  On mismatch the request is re-planned on a **fresh**
//! engine with `trace: true` — a cache hit's trace stops at the lookup,
//! so attribution needs a full compute — and [`crate::drift`] names the
//! first divergent span, plan bit, or cost.

use std::fmt;

use hypar_engine::{PlanEngine, PlanRequest, RecordEntry};

use crate::drift::{attribute, DriftReport};

/// The verdict on one replayed log entry.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// Recorded and replayed outcomes agree.
    Match,
    /// Outcomes diverged; the report names the first difference.
    Drift(DriftReport),
    /// The recorded entry is internally inconsistent (its stored
    /// `state_hash` does not re-derive from its stored response): the
    /// log was tampered with or truncated mid-write, so the entry
    /// cannot arbitrate drift.
    CorruptEntry(String),
}

/// One replayed entry: the log position, the workload it described, and
/// the verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayedEntry {
    /// 0-based index into the log.
    pub index: usize,
    /// Human identification of the workload (network/strategy/levels).
    pub workload: String,
    /// The comparison verdict.
    pub verdict: Verdict,
}

/// The outcome of replaying a whole log.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ReplaySummary {
    /// One row per log entry, in log order.
    pub entries: Vec<ReplayedEntry>,
}

impl ReplaySummary {
    /// Number of entries that matched.
    #[must_use]
    pub fn matched(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.verdict == Verdict::Match)
            .count()
    }

    /// Whether every entry matched.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.matched() == self.entries.len()
    }
}

impl fmt::Display for ReplaySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for entry in &self.entries {
            match &entry.verdict {
                Verdict::Match => {}
                Verdict::Drift(report) => {
                    writeln!(f, "[{:>4}] {}: {report}", entry.index, entry.workload)?;
                }
                Verdict::CorruptEntry(message) => writeln!(
                    f,
                    "[{:>4}] {}: corrupt log entry: {message}",
                    entry.index, entry.workload
                )?,
            }
        }
        write!(
            f,
            "{}/{} entr(ies) replayed bit-identically",
            self.matched(),
            self.entries.len()
        )
    }
}

/// Replays `entries` in order against `engine` and returns the verdicts.
#[must_use]
pub fn replay(engine: &PlanEngine, entries: &[RecordEntry]) -> ReplaySummary {
    let replayed = entries
        .iter()
        .enumerate()
        .map(|(index, entry)| {
            let workload = label(&entry.request);
            let verdict = replay_one(engine, entry);
            ReplayedEntry {
                index,
                workload,
                verdict,
            }
        })
        .collect();
    ReplaySummary { entries: replayed }
}

fn label(request: &PlanRequest) -> String {
    let network = match &request.network {
        hypar_engine::NetworkRef::Zoo(name) => name.clone(),
        hypar_engine::NetworkRef::Custom(_) => "<custom>".to_owned(),
        hypar_engine::NetworkRef::Graph(_) => "<graph>".to_owned(),
    };
    format!("{network} {} H{}", request.strategy.name(), request.levels)
}

fn replay_one(engine: &PlanEngine, entry: &RecordEntry) -> Verdict {
    // Validate the entry before trusting it as the old side of a diff.
    if let Some(recorded) = &entry.response {
        let rederived = recorded.compute_state_hash();
        if rederived != recorded.state_hash {
            return Verdict::CorruptEntry(format!(
                "stored state_hash `{}` does not re-derive (`{rederived}`)",
                recorded.state_hash
            ));
        }
    }
    let outcome = engine.plan(&entry.request);
    match (&entry.response, &entry.error, outcome) {
        (Some(recorded), _, Ok(replayed)) => {
            if recorded.state_hash == replayed.state_hash {
                return Verdict::Match;
            }
            // Re-plan traced on a fresh engine so the compute subtree is
            // present, then attribute.
            let traced = PlanEngine::new().plan(&entry.request.clone().trace(true));
            let (new_response, new_timing) = match traced {
                Ok(response) => {
                    let timing = response.timing.clone();
                    (response, timing)
                }
                Err(_) => (replayed, None),
            };
            match attribute(
                recorded,
                &new_response,
                recorded.timing.as_ref(),
                new_timing.as_ref(),
            ) {
                Some(report) => Verdict::Drift(report),
                // attribute() only returns None when content and hash both
                // agree; reaching here means the hashes disagreed, so keep
                // the raw evidence.
                None => Verdict::Drift(DriftReport {
                    location: "state_hash".to_owned(),
                    detail: format!("`{}` -> `{}`", recorded.state_hash, new_response.state_hash),
                }),
            }
        }
        (None, Some(recorded_err), Err(replayed_err)) => {
            let replayed_err = replayed_err.to_string();
            if *recorded_err == replayed_err {
                Verdict::Match
            } else {
                Verdict::Drift(DriftReport {
                    location: "error".to_owned(),
                    detail: format!("`{recorded_err}` -> `{replayed_err}`"),
                })
            }
        }
        (None, Some(recorded_err), Ok(replayed)) => Verdict::Drift(DriftReport {
            location: "outcome".to_owned(),
            detail: format!(
                "error `{recorded_err}` -> plan (state_hash `{}`)",
                replayed.state_hash
            ),
        }),
        (Some(recorded), _, Err(replayed_err)) => Verdict::Drift(DriftReport {
            location: "outcome".to_owned(),
            detail: format!(
                "plan (state_hash `{}`) -> error `{replayed_err}`",
                recorded.state_hash
            ),
        }),
        (None, None, outcome) => Verdict::CorruptEntry(format!(
            "entry records neither response nor error (replay produced {})",
            match outcome {
                Ok(_) => "a plan".to_owned(),
                Err(err) => format!("error `{err}`"),
            }
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_of(requests: &[PlanRequest]) -> Vec<RecordEntry> {
        let engine = PlanEngine::new();
        requests
            .iter()
            .map(|request| RecordEntry::from_outcome(request, &engine.plan(request)))
            .collect()
    }

    #[test]
    fn a_clean_log_replays_clean() {
        let entries = log_of(&[
            PlanRequest::zoo("lenet_c").levels(2),
            PlanRequest::zoo("lenet_c").levels(2),
            PlanRequest::zoo("sfc").levels(3).simulate(true),
            PlanRequest::zoo("no-such-network"),
        ]);
        let summary = replay(&PlanEngine::new(), &entries);
        assert!(summary.is_clean(), "{summary}");
        assert_eq!(summary.matched(), 4);
    }

    #[test]
    fn a_perturbed_cost_drifts_with_layer_level_attribution() {
        let mut entries = log_of(&[PlanRequest::zoo("lenet_c").levels(2)]);
        // Tamper with the recorded plan: flip layer 1's level-0 bit and
        // re-stamp the hash so the entry stays self-consistent (a build
        // that really produced this plan would have recorded exactly
        // this).
        let response = entries[0].response.as_mut().unwrap();
        let mut levels = response.plan.levels().to_vec();
        levels[0][1] = match levels[0][1] {
            hypar_comm::Parallelism::Data => hypar_comm::Parallelism::Model,
            hypar_comm::Parallelism::Model => hypar_comm::Parallelism::Data,
        };
        response.plan = hypar_core::HierarchicalPlan::from_parts(
            response.plan.network().to_owned(),
            response.plan.layer_names().to_vec(),
            levels,
            response.plan.total_comm_elems(),
        );
        response.state_hash = response.compute_state_hash();

        let summary = replay(&PlanEngine::new(), &entries);
        assert!(!summary.is_clean());
        match &summary.entries[0].verdict {
            Verdict::Drift(report) => {
                assert!(report.location.contains("plan"), "{report}");
                assert!(
                    report.detail.contains("layer 1") && report.detail.contains("level 0"),
                    "{report}"
                );
            }
            other => panic!("expected drift, got {other:?}"),
        }
    }

    #[test]
    fn a_tampered_hash_is_reported_as_corruption_not_drift() {
        let mut entries = log_of(&[PlanRequest::zoo("lenet_c").levels(2)]);
        entries[0].response.as_mut().unwrap().state_hash = "0".repeat(16);
        let summary = replay(&PlanEngine::new(), &entries);
        match &summary.entries[0].verdict {
            Verdict::CorruptEntry(message) => {
                assert!(message.contains("does not re-derive"), "{message}");
            }
            other => panic!("expected corruption, got {other:?}"),
        }
    }
}
