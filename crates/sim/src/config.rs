//! Architecture configuration (the paper's §6.1 evaluation setup).

use hypar_comm::JunctionScaling;
use serde::{Deserialize, Serialize};

use crate::pe::PeArray;
use crate::{EnergyModel, Topology};

/// The accelerator-array configuration used by the simulator.
///
/// Defaults ([`ArchConfig::paper`]) reproduce the paper's setup: each
/// accelerator is an HMC cube whose logic die carries an Eyeriss-like
/// row-stationary processing unit with 168 PEs at 250 MHz (84 GOPS/s),
/// 320 GB/s of local DRAM bandwidth and 8 GB of capacity; accelerators are
/// connected by 1600 Mb/s links in an H-tree.
///
/// # Examples
///
/// ```
/// use hypar_sim::{ArchConfig, Topology};
///
/// let cfg = ArchConfig::paper().with_topology(Topology::Torus);
/// assert_eq!(cfg.compute_ops_per_sec, 84e9);
/// assert_eq!(cfg.topology, Topology::Torus);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArchConfig {
    /// Inter-accelerator topology.
    pub topology: Topology,
    /// Leaf link bandwidth in bytes/s (paper: 1600 Mb/s = 200 MB/s).
    pub leaf_link_bytes_per_sec: f64,
    /// Compute throughput of one processing unit in ops/s, counting a MAC
    /// as two ops (paper: 84.0 GOPS/s = 168 PEs × 250 MHz × 2).
    pub compute_ops_per_sec: f64,
    /// Processing units per accelerator node.  The paper's node is an HMC
    /// cube with one Eyeriss-like PU per vault ("within an HMC vault (i.e.,
    /// an Eyeriss accelerator and its local memory)"); an HMC has 16
    /// vaults.
    pub pus_per_accelerator: u32,
    /// Per-accelerator local DRAM bandwidth in bytes/s (paper: 320 GB/s
    /// HMC).
    pub dram_bytes_per_sec: f64,
    /// Per-accelerator DRAM capacity in bytes (paper: 8 GB HMC).
    pub dram_capacity_bytes: f64,
    /// Whether communication may overlap with compute.  `false` (default)
    /// reproduces the paper's phase-ordered training step; `true` is kept
    /// as an ablation.
    pub overlap_comm: bool,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Bytes per tensor element (fp32).
    pub precision_bytes: u32,
    /// Whether to time compute with the row-stationary PE-array mapping
    /// ([`crate::pe`]) instead of the flat peak-throughput roofline.
    /// `false` by default; the `pe` ablation quantifies the difference.
    pub detailed_pe: bool,
    /// The PE grid used when `detailed_pe` is enabled.
    pub pe_array: PeArray,
    /// How junction tensors are scoped when the hierarchy descends —
    /// consumer layout (default), producer layout, or unscaled.  Must
    /// match the interpretation the plan was costed under for the
    /// simulated traffic to reconcile with the analytic total; the
    /// `ablation` experiment sweeps the alternatives on chains and DAGs
    /// alike.
    pub junction_scaling: JunctionScaling,
    /// Whether `add`/`concat` joins charge their element-wise
    /// accumulation/gather work to the compute model (`true` by default).
    /// The analytic communication model never sees this work — it moves no
    /// tensors between groups — but ignoring it under-counts step time on
    /// join-heavy networks; `false` reproduces the pure-analytic schedule.
    pub join_compute: bool,
}

impl ArchConfig {
    /// The paper's evaluation configuration.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            topology: Topology::HTree,
            leaf_link_bytes_per_sec: 200e6,
            compute_ops_per_sec: 84e9,
            pus_per_accelerator: 16,
            dram_bytes_per_sec: 320e9,
            dram_capacity_bytes: 8e9,
            overlap_comm: false,
            energy: EnergyModel::paper(),
            precision_bytes: 4,
            detailed_pe: false,
            pe_array: PeArray::paper(),
            junction_scaling: JunctionScaling::Consumer,
            join_compute: true,
        }
    }

    /// Aggregate compute throughput of one accelerator node in ops/s.
    #[must_use]
    pub fn node_ops_per_sec(&self) -> f64 {
        self.compute_ops_per_sec * f64::from(self.pus_per_accelerator)
    }

    /// Returns the configuration with a different topology.
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Returns the configuration with communication/compute overlap
    /// enabled or disabled.
    #[must_use]
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap_comm = overlap;
        self
    }

    /// Returns the configuration with the row-stationary PE-array timing
    /// model enabled.
    #[must_use]
    pub fn with_detailed_pe(mut self) -> Self {
        self.detailed_pe = true;
        self
    }

    /// Returns the configuration with a different junction-scaling
    /// interpretation.
    #[must_use]
    pub fn with_junction_scaling(mut self, mode: JunctionScaling) -> Self {
        self.junction_scaling = mode;
        self
    }

    /// Returns the configuration with join element-wise compute charging
    /// enabled or disabled.
    #[must_use]
    pub fn with_join_compute(mut self, join_compute: bool) -> Self {
        self.join_compute = join_compute;
        self
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_6_1() {
        let cfg = ArchConfig::paper();
        assert_eq!(cfg.leaf_link_bytes_per_sec, 200e6);
        assert_eq!(cfg.compute_ops_per_sec, 84e9);
        assert_eq!(cfg.pus_per_accelerator, 16);
        assert_eq!(cfg.node_ops_per_sec(), 16.0 * 84e9);
        assert_eq!(cfg.dram_bytes_per_sec, 320e9);
        assert_eq!(cfg.dram_capacity_bytes, 8e9);
        assert_eq!(cfg.topology, Topology::HTree);
        assert!(!cfg.overlap_comm);
    }

    #[test]
    fn builder_methods_chain() {
        let cfg = ArchConfig::paper()
            .with_topology(Topology::Torus)
            .with_overlap(true);
        assert_eq!(cfg.topology, Topology::Torus);
        assert!(cfg.overlap_comm);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(ArchConfig::default(), ArchConfig::paper());
    }

    #[test]
    fn junction_and_join_knobs_have_paper_defaults() {
        let cfg = ArchConfig::paper();
        assert_eq!(cfg.junction_scaling, JunctionScaling::Consumer);
        assert!(cfg.join_compute);
        let cfg = cfg
            .with_junction_scaling(JunctionScaling::Producer)
            .with_join_compute(false);
        assert_eq!(cfg.junction_scaling, JunctionScaling::Producer);
        assert!(!cfg.join_compute);
    }
}
