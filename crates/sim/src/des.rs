//! A deterministic discrete-event engine.
//!
//! The simulator models one training step as a **task graph**: every
//! compute phase and every tensor transfer is a task with a fixed duration,
//! a set of dependencies, and an exclusive resource (an accelerator's
//! processing unit, or one level's group-pair link).  The engine executes
//! the graph event-by-event: a task becomes *ready* when its last
//! dependency finishes, waits in its resource's queue, runs when the
//! resource frees up, and releases its dependents on completion.
//!
//! Scheduling is deterministic: ties are broken by ready time, then by
//! insertion order.
//!
//! # Examples
//!
//! ```
//! use hypar_sim::des::{Engine, TaskSpec};
//! use hypar_tensor::Seconds;
//!
//! let mut engine = Engine::new();
//! let cpu = engine.add_resource("cpu");
//! let a = engine.add_task(TaskSpec::new(cpu, Seconds(1.0)));
//! let b = engine.add_task(TaskSpec::new(cpu, Seconds(2.0)).after(a));
//! let schedule = engine.run();
//! assert_eq!(schedule.finish_time(b).value(), 3.0);
//! assert_eq!(schedule.makespan().value(), 3.0);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hypar_tensor::Seconds;

/// Identifier of a task within one [`Engine`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(usize);

/// Identifier of an exclusive resource within one [`Engine`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(usize);

/// Specification of one task: its resource, duration, and dependencies.
#[derive(Clone, Debug)]
pub struct TaskSpec {
    resource: ResourceId,
    duration: Seconds,
    deps: Vec<TaskId>,
    label: Option<String>,
}

impl TaskSpec {
    /// A task of the given duration on the given resource with no
    /// dependencies.
    #[must_use]
    pub fn new(resource: ResourceId, duration: Seconds) -> Self {
        Self {
            resource,
            duration,
            deps: Vec::new(),
            label: None,
        }
    }

    /// Names the task for trace export ([`Schedule::chrome_trace`]).
    #[must_use]
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Adds a dependency: this task cannot start before `dep` finishes.
    #[must_use]
    pub fn after(mut self, dep: TaskId) -> Self {
        self.deps.push(dep);
        self
    }

    /// Adds several dependencies at once.
    #[must_use]
    pub fn after_all(mut self, deps: impl IntoIterator<Item = TaskId>) -> Self {
        self.deps.extend(deps);
        self
    }
}

#[derive(Debug)]
struct Task {
    resource: ResourceId,
    duration: f64,
    pending_deps: usize,
    dependents: Vec<usize>,
    label: Option<String>,
}

#[derive(Debug)]
struct Resource {
    #[allow(dead_code)]
    name: String,
    busy_until: f64,
    busy_total: f64,
    /// Ready tasks waiting for this resource: (ready time, task index).
    queue: BinaryHeap<Reverse<(OrderedTime, usize)>>,
    running: bool,
}

/// Total order for event times; task durations are finite by construction.
#[derive(Copy, Clone, Debug, PartialEq)]
struct OrderedTime(f64);

impl Eq for OrderedTime {}

impl PartialOrd for OrderedTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The deterministic discrete-event engine.
///
/// Build the graph with [`Engine::add_resource`] and [`Engine::add_task`],
/// then call [`Engine::run`].
#[derive(Debug)]
pub struct Engine {
    tasks: Vec<Task>,
    resources: Vec<Resource>,
}

impl Engine {
    /// Creates an empty engine.
    #[must_use]
    pub fn new() -> Self {
        Self {
            tasks: Vec::new(),
            resources: Vec::new(),
        }
    }

    /// Registers an exclusive resource.
    pub fn add_resource(&mut self, name: impl Into<String>) -> ResourceId {
        self.resources.push(Resource {
            name: name.into(),
            busy_until: 0.0,
            busy_total: 0.0,
            queue: BinaryHeap::new(),
            running: false,
        });
        ResourceId(self.resources.len() - 1)
    }

    /// Registers a task.
    ///
    /// # Panics
    ///
    /// Panics if the spec references an unknown resource or task, or if the
    /// duration is negative or non-finite.
    pub fn add_task(&mut self, spec: TaskSpec) -> TaskId {
        assert!(spec.resource.0 < self.resources.len(), "unknown resource");
        assert!(
            spec.duration.value() >= 0.0 && spec.duration.value().is_finite(),
            "task duration must be finite and non-negative"
        );
        let id = self.tasks.len();
        let mut pending = 0;
        for dep in &spec.deps {
            assert!(dep.0 < id, "dependencies must be previously added tasks");
        }
        // Dedup so a task listed twice as a dependency is counted once.
        let mut deps = spec.deps.clone();
        deps.sort_unstable();
        deps.dedup();
        for dep in &deps {
            self.tasks[dep.0].dependents.push(id);
            pending += 1;
        }
        self.tasks.push(Task {
            resource: spec.resource,
            duration: spec.duration.value(),
            pending_deps: pending,
            dependents: Vec::new(),
            label: spec.label,
        });
        TaskId(id)
    }

    /// Number of resources added so far.
    #[must_use]
    pub fn num_resources(&self) -> usize {
        self.resources.len()
    }

    /// Number of tasks added so far.
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Executes the graph to completion and returns the schedule.
    ///
    /// # Panics
    ///
    /// Panics if the dependency graph is cyclic (impossible through the
    /// public API, which only allows backward references).
    #[must_use]
    pub fn run(mut self) -> Schedule {
        let n = self.tasks.len();
        let mut finish = vec![0.0f64; n];
        let mut start = vec![0.0f64; n];
        let mut done = vec![false; n];
        // Event heap ordered by (time, kind-priority, task index): finishes
        // before readies at equal times so freed resources pick up work
        // deterministically.
        let mut events: BinaryHeap<Reverse<(OrderedTime, u8, usize)>> = BinaryHeap::new();

        for (i, task) in self.tasks.iter().enumerate() {
            if task.pending_deps == 0 {
                events.push(Reverse((OrderedTime(0.0), 1, i)));
            }
        }

        let mut completed = 0usize;
        while let Some(Reverse((OrderedTime(now), kind, idx))) = events.pop() {
            match kind {
                0 => {
                    // Finish.
                    debug_assert!(!done[idx]);
                    done[idx] = true;
                    completed += 1;
                    let resource = self.tasks[idx].resource.0;
                    self.resources[resource].running = false;
                    // Release dependents.
                    let dependents = std::mem::take(&mut self.tasks[idx].dependents);
                    for d in dependents {
                        self.tasks[d].pending_deps -= 1;
                        if self.tasks[d].pending_deps == 0 {
                            events.push(Reverse((OrderedTime(now), 1, d)));
                        }
                    }
                    // Start the next queued task, if any.
                    if let Some(Reverse((ready, next))) = self.resources[resource].queue.pop() {
                        debug_assert!(ready.0 <= now);
                        start_task(
                            &mut self.resources[resource],
                            next,
                            now,
                            &self.tasks,
                            &mut start,
                            &mut finish,
                            &mut events,
                        );
                    }
                }
                _ => {
                    // Ready: enqueue on the resource; start immediately if idle.
                    let resource = self.tasks[idx].resource.0;
                    if self.resources[resource].running {
                        self.resources[resource]
                            .queue
                            .push(Reverse((OrderedTime(now), idx)));
                    } else {
                        start_task(
                            &mut self.resources[resource],
                            idx,
                            now,
                            &self.tasks,
                            &mut start,
                            &mut finish,
                            &mut events,
                        );
                    }
                }
            }
        }

        assert_eq!(completed, n, "dependency graph did not complete (cycle?)");
        let makespan = finish.iter().copied().fold(0.0, f64::max);
        Schedule {
            start: start.into_iter().map(Seconds).collect(),
            finish: finish.into_iter().map(Seconds).collect(),
            makespan: Seconds(makespan),
            resource_busy: self
                .resources
                .iter()
                .map(|r| Seconds(r.busy_total))
                .collect(),
            resource_names: self.resources.iter().map(|r| r.name.clone()).collect(),
            task_resources: self.tasks.iter().map(|t| t.resource).collect(),
            task_labels: self.tasks.iter().map(|t| t.label.clone()).collect(),
        }
    }
}

fn start_task(
    resource: &mut Resource,
    idx: usize,
    now: f64,
    tasks: &[Task],
    start: &mut [f64],
    finish: &mut [f64],
    events: &mut BinaryHeap<Reverse<(OrderedTime, u8, usize)>>,
) {
    resource.running = true;
    let dur = tasks[idx].duration;
    start[idx] = now;
    finish[idx] = now + dur;
    resource.busy_until = now + dur;
    resource.busy_total += dur;
    events.push(Reverse((OrderedTime(now + dur), 0, idx)));
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

/// The result of executing a task graph.
#[derive(Clone, Debug)]
pub struct Schedule {
    start: Vec<Seconds>,
    finish: Vec<Seconds>,
    makespan: Seconds,
    resource_busy: Vec<Seconds>,
    resource_names: Vec<String>,
    task_resources: Vec<ResourceId>,
    task_labels: Vec<Option<String>>,
}

impl Schedule {
    /// When the given task started.
    #[must_use]
    pub fn start_time(&self, task: TaskId) -> Seconds {
        self.start[task.0]
    }

    /// When the given task finished.
    #[must_use]
    pub fn finish_time(&self, task: TaskId) -> Seconds {
        self.finish[task.0]
    }

    /// Completion time of the whole graph.
    #[must_use]
    pub fn makespan(&self) -> Seconds {
        self.makespan
    }

    /// Total busy time of a resource (its utilization numerator).
    #[must_use]
    pub fn busy_time(&self, resource: ResourceId) -> Seconds {
        self.resource_busy[resource.0]
    }

    /// Exports the schedule as a Chrome trace (the JSON consumed by
    /// `chrome://tracing` / Perfetto): one timeline row per resource, one
    /// slice per labeled task.  Unlabeled zero-duration tasks (barriers)
    /// are omitted.
    ///
    /// # Examples
    ///
    /// ```
    /// use hypar_sim::des::{Engine, TaskSpec};
    /// use hypar_tensor::Seconds;
    ///
    /// let mut engine = Engine::new();
    /// let cpu = engine.add_resource("accel0");
    /// engine.add_task(TaskSpec::new(cpu, Seconds(1.0)).label("fwd conv1"));
    /// let trace = engine.run().chrome_trace();
    /// assert!(trace.contains("fwd conv1"));
    /// assert!(trace.contains("accel0"));
    /// ```
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("[\n");
        let mut first = true;
        for (tid, name) in self.resource_names.iter().enumerate() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ));
        }
        for (i, label) in self.task_labels.iter().enumerate() {
            let Some(label) = label else { continue };
            let start_us = self.start[i].value() * 1e6;
            let dur_us = (self.finish[i].value() - self.start[i].value()) * 1e6;
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{label}\",\"ph\":\"X\",\"ts\":{start_us:.3},\
                 \"dur\":{dur_us:.3},\"pid\":0,\"tid\":{}}}",
                self.task_resources[i].0
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_zero_makespan() {
        let engine = Engine::new();
        assert_eq!(engine.run().makespan().value(), 0.0);
    }

    #[test]
    fn independent_tasks_on_different_resources_run_in_parallel() {
        let mut engine = Engine::new();
        let r1 = engine.add_resource("a");
        let r2 = engine.add_resource("b");
        engine.add_task(TaskSpec::new(r1, Seconds(3.0)));
        engine.add_task(TaskSpec::new(r2, Seconds(2.0)));
        assert_eq!(engine.run().makespan().value(), 3.0);
    }

    #[test]
    fn same_resource_serializes() {
        let mut engine = Engine::new();
        let r = engine.add_resource("a");
        let t1 = engine.add_task(TaskSpec::new(r, Seconds(3.0)));
        let t2 = engine.add_task(TaskSpec::new(r, Seconds(2.0)));
        let s = engine.run();
        assert_eq!(s.makespan().value(), 5.0);
        // Insertion order breaks the tie at t=0.
        assert_eq!(s.finish_time(t1).value(), 3.0);
        assert_eq!(s.finish_time(t2).value(), 5.0);
    }

    #[test]
    fn dependencies_delay_start() {
        let mut engine = Engine::new();
        let r1 = engine.add_resource("a");
        let r2 = engine.add_resource("b");
        let t1 = engine.add_task(TaskSpec::new(r1, Seconds(4.0)));
        let t2 = engine.add_task(TaskSpec::new(r2, Seconds(1.0)).after(t1));
        let s = engine.run();
        assert_eq!(s.start_time(t2).value(), 4.0);
        assert_eq!(s.finish_time(t2).value(), 5.0);
    }

    #[test]
    fn diamond_joins_at_the_slowest_branch() {
        let mut engine = Engine::new();
        let r: Vec<_> = (0..4)
            .map(|i| engine.add_resource(format!("r{i}")))
            .collect();
        let head = engine.add_task(TaskSpec::new(r[0], Seconds(1.0)));
        let fast = engine.add_task(TaskSpec::new(r[1], Seconds(1.0)).after(head));
        let slow = engine.add_task(TaskSpec::new(r[2], Seconds(5.0)).after(head));
        let tail = engine.add_task(TaskSpec::new(r[3], Seconds(1.0)).after(fast).after(slow));
        let s = engine.run();
        assert_eq!(s.finish_time(tail).value(), 7.0);
    }

    #[test]
    fn queued_tasks_run_in_ready_order() {
        let mut engine = Engine::new();
        let producer = engine.add_resource("p");
        let shared = engine.add_resource("s");
        // t_early becomes ready at 1.0, t_late at 2.0; both queue on `shared`
        // behind a long task. The earlier-ready one must run first.
        let blocker = engine.add_task(TaskSpec::new(shared, Seconds(10.0)));
        let e1 = engine.add_task(TaskSpec::new(producer, Seconds(1.0)));
        let e2 = engine.add_task(TaskSpec::new(producer, Seconds(1.0)).after(e1));
        let late = engine.add_task(TaskSpec::new(shared, Seconds(1.0)).after(e2));
        let early = engine.add_task(TaskSpec::new(shared, Seconds(1.0)).after(e1));
        let s = engine.run();
        assert_eq!(s.finish_time(blocker).value(), 10.0);
        assert!(s.start_time(early) < s.start_time(late));
    }

    #[test]
    fn zero_duration_tasks_are_legal() {
        let mut engine = Engine::new();
        let r = engine.add_resource("a");
        let t = engine.add_task(TaskSpec::new(r, Seconds(0.0)));
        let s = engine.run();
        assert_eq!(s.finish_time(t).value(), 0.0);
    }

    #[test]
    fn busy_time_accumulates() {
        let mut engine = Engine::new();
        let r = engine.add_resource("a");
        engine.add_task(TaskSpec::new(r, Seconds(1.5)));
        engine.add_task(TaskSpec::new(r, Seconds(2.5)));
        let s = engine.run();
        assert_eq!(s.busy_time(ResourceId(0)).value(), 4.0);
    }

    #[test]
    fn duplicate_dependencies_count_once() {
        let mut engine = Engine::new();
        let r = engine.add_resource("a");
        let t1 = engine.add_task(TaskSpec::new(r, Seconds(1.0)));
        let t2 = engine.add_task(TaskSpec::new(r, Seconds(1.0)).after(t1).after(t1));
        let s = engine.run();
        assert_eq!(s.finish_time(t2).value(), 2.0);
    }

    #[test]
    #[should_panic(expected = "previously added tasks")]
    fn forward_dependency_panics() {
        let mut engine = Engine::new();
        let r = engine.add_resource("a");
        let _ = engine.add_task(TaskSpec::new(r, Seconds(1.0)).after(TaskId(5)));
    }

    #[test]
    fn large_chain_scales() {
        let mut engine = Engine::new();
        let r = engine.add_resource("a");
        let mut prev = engine.add_task(TaskSpec::new(r, Seconds(0.001)));
        for _ in 0..10_000 {
            prev = engine.add_task(TaskSpec::new(r, Seconds(0.001)).after(prev));
        }
        let s = engine.run();
        assert!((s.makespan().value() - 10.001).abs() < 1e-6);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// A random DAG: `(resource, duration, deps-as-bitmask-over-earlier-tasks)`.
        fn arb_graph() -> impl Strategy<Value = Vec<(usize, f64, u64)>> {
            proptest::collection::vec((0usize..4, 0.0f64..10.0, any::<u64>()), 1..40)
        }

        fn build(graph: &[(usize, f64, u64)]) -> (Engine, Vec<TaskId>) {
            let mut engine = Engine::new();
            let resources: Vec<_> = (0..4)
                .map(|i| engine.add_resource(format!("r{i}")))
                .collect();
            let mut ids: Vec<TaskId> = Vec::new();
            for (i, &(res, dur, mask)) in graph.iter().enumerate() {
                let deps: Vec<TaskId> = (0..i.min(64))
                    .filter(|&j| mask >> j & 1 == 1)
                    .map(|j| ids[j])
                    .collect();
                ids.push(
                    engine.add_task(TaskSpec::new(resources[res], Seconds(dur)).after_all(deps)),
                );
            }
            (engine, ids)
        }

        proptest! {
            /// Every task finishes, after all of its dependencies.
            #[test]
            fn dependencies_are_respected(graph in arb_graph()) {
                let (engine, ids) = build(&graph);
                let schedule = engine.run();
                for (i, &(_, dur, mask)) in graph.iter().enumerate() {
                    prop_assert!(
                        (schedule.finish_time(ids[i]).value()
                            - schedule.start_time(ids[i]).value() - dur).abs() < 1e-9
                    );
                    for j in (0..i.min(64)).filter(|&j| mask >> j & 1 == 1) {
                        prop_assert!(
                            schedule.start_time(ids[i]) >= schedule.finish_time(ids[j]),
                            "task {i} started before dep {j} finished"
                        );
                    }
                }
            }

            /// The makespan is bounded below by every resource's busy time
            /// and above by the fully-serial sum.
            #[test]
            fn makespan_bounds(graph in arb_graph()) {
                let (engine, _) = build(&graph);
                let schedule = engine.run();
                let total: f64 = graph.iter().map(|&(_, d, _)| d).sum();
                prop_assert!(schedule.makespan().value() <= total + 1e-9);
                for r in 0..4 {
                    prop_assert!(
                        schedule.busy_time(ResourceId(r)).value()
                            <= schedule.makespan().value() + 1e-9
                    );
                }
            }

            /// Scheduling is deterministic.
            #[test]
            fn deterministic(graph in arb_graph()) {
                let (e1, ids) = build(&graph);
                let (e2, _) = build(&graph);
                let s1 = e1.run();
                let s2 = e2.run();
                for &id in &ids {
                    prop_assert_eq!(s1.start_time(id), s2.start_time(id));
                    prop_assert_eq!(s1.finish_time(id), s2.finish_time(id));
                }
            }
        }
    }
}
