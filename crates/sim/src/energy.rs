//! The energy model (paper §6.1 constants, from Horowitz ISSCC'14).

use hypar_tensor::Joules;
use serde::{Deserialize, Serialize};

/// Per-operation energy constants and accounting helpers.
///
/// The paper gives: 0.9 pJ per 32-bit float ADD, 3.7 pJ per 32-bit float
/// MULT, 5.0 pJ per 32-bit SRAM access, 640 pJ per 32-bit DRAM access.  Two
/// knobs the paper leaves implicit are exposed here:
///
/// * `sram_accesses_per_mac` — the effective on-chip traffic per MAC after
///   row-stationary reuse (default 1.0: each operand word is fetched from
///   SRAM roughly once per MAC thanks to the Eyeriss reuse pattern);
/// * `link_pj_per_byte` — energy of traversing an inter-accelerator link
///   (default 0: the paper accounts remote accesses as DRAM accesses at
///   both ends, which [`EnergyModel::link`] always includes).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of a 32-bit floating-point addition, in picojoules.
    pub add_pj: f64,
    /// Energy of a 32-bit floating-point multiplication, in picojoules.
    pub mult_pj: f64,
    /// Energy of one 32-bit SRAM access, in picojoules.
    pub sram_access_pj: f64,
    /// Energy of one 32-bit DRAM access, in picojoules.
    pub dram_access_pj: f64,
    /// Effective SRAM accesses per MAC after row-stationary reuse.
    pub sram_accesses_per_mac: f64,
    /// Extra energy per byte crossing an inter-accelerator link, in
    /// picojoules.
    pub link_pj_per_byte: f64,
}

const PJ: f64 = 1e-12;
/// Bytes per 32-bit word.
const WORD_BYTES: f64 = 4.0;

impl EnergyModel {
    /// The paper's constants.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            add_pj: 0.9,
            mult_pj: 3.7,
            sram_access_pj: 5.0,
            dram_access_pj: 640.0,
            sram_accesses_per_mac: 1.0,
            link_pj_per_byte: 0.0,
        }
    }

    /// Energy of `macs` multiply-accumulates including their SRAM traffic.
    #[must_use]
    pub fn compute(&self, macs: f64) -> Joules {
        self.compute_with_sram(macs, self.sram_accesses_per_mac)
    }

    /// [`EnergyModel::compute`] with an explicit per-MAC SRAM traffic
    /// count, e.g. from a [`crate::pe::Mapping`].
    #[must_use]
    pub fn compute_with_sram(&self, macs: f64, sram_accesses_per_mac: f64) -> Joules {
        let per_mac = self.mult_pj + self.add_pj + sram_accesses_per_mac * self.sram_access_pj;
        Joules(macs * per_mac * PJ)
    }

    /// Energy of `ops` element-wise operations (activations, pooling,
    /// weight updates), costed as additions plus one SRAM access each.
    #[must_use]
    pub fn elementwise(&self, ops: f64) -> Joules {
        Joules(ops * (self.add_pj + self.sram_access_pj) * PJ)
    }

    /// Energy of moving `bytes` to or from local DRAM (HMC vault).
    #[must_use]
    pub fn dram(&self, bytes: f64) -> Joules {
        Joules(bytes / WORD_BYTES * self.dram_access_pj * PJ)
    }

    /// Energy of moving `bytes` across an inter-accelerator link: a DRAM
    /// access at each end plus the per-byte link cost.
    #[must_use]
    pub fn link(&self, bytes: f64) -> Joules {
        let dram_both_ends = 2.0 * bytes / WORD_BYTES * self.dram_access_pj;
        Joules((dram_both_ends + bytes * self.link_pj_per_byte) * PJ)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let e = EnergyModel::paper();
        assert_eq!(e.add_pj, 0.9);
        assert_eq!(e.mult_pj, 3.7);
        assert_eq!(e.sram_access_pj, 5.0);
        assert_eq!(e.dram_access_pj, 640.0);
    }

    #[test]
    fn one_mac_costs_mult_plus_add_plus_sram() {
        let e = EnergyModel::paper();
        assert!((e.compute(1.0).value() - 9.6e-12).abs() < 1e-24);
    }

    #[test]
    fn dram_is_per_word() {
        let e = EnergyModel::paper();
        // 4 bytes = one 32-bit access = 640 pJ.
        assert!((e.dram(4.0).value() - 640e-12).abs() < 1e-24);
    }

    #[test]
    fn link_includes_both_end_drams() {
        let e = EnergyModel::paper();
        assert!((e.link(4.0).value() - 1280e-12).abs() < 1e-24);
        let with_link = EnergyModel {
            link_pj_per_byte: 10.0,
            ..EnergyModel::paper()
        };
        assert!((with_link.link(4.0).value() - (1280e-12 + 40e-12)).abs() < 1e-24);
    }

    #[test]
    fn energies_scale_linearly() {
        let e = EnergyModel::paper();
        assert!((e.compute(100.0).value() - 100.0 * e.compute(1.0).value()).abs() < 1e-20);
        assert!((e.elementwise(10.0).value() - 10.0 * 5.9e-12).abs() < 1e-22);
    }
}
