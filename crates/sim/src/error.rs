//! Typed errors for the training-step simulator.

use std::error::Error;
use std::fmt;

/// Why a training-step simulation could not run.
///
/// The simulator is reachable from the planning service's untrusted
/// request path, so inconsistent inputs must surface as values — a
/// malformed request may cost one error response, never the process.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The plan's weighted-layer count does not match the network's (or
    /// the DAG segment decomposition's).
    LayerCountMismatch {
        /// Weighted layers the plan covers.
        plan_layers: usize,
        /// Weighted layers the network actually has.
        network_layers: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LayerCountMismatch {
                plan_layers,
                network_layers,
            } => write!(
                f,
                "plan covers {plan_layers} weighted layer(s) but the network has \
                 {network_layers}; plan and network must have the same number of weighted layers"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_reports_both_counts() {
        let err = SimError::LayerCountMismatch {
            plan_layers: 4,
            network_layers: 7,
        };
        let msg = err.to_string();
        assert!(msg.contains('4'));
        assert!(msg.contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
