//! Event-driven simulator for the HMC-based HyPar accelerator array
//! (paper §5–6).
//!
//! The paper evaluates HyPar on an event-driven simulation of sixteen
//! HMC-based accelerators with Eyeriss-style row-stationary processing
//! units, connected by an H-tree (or torus) network.  This crate rebuilds
//! that methodology:
//!
//! * [`des`] — a generic discrete-event engine: tasks with dependencies
//!   executed on exclusive resources (accelerators, links);
//! * [`ArchConfig`] / [`EnergyModel`] — the paper's published hardware
//!   constants (84 GOPS/s and 320 GB/s per accelerator, 1600 Mb/s leaf
//!   links, 0.9/3.7/5.0/640 pJ energy numbers);
//! * [`Topology`] — H-tree and torus inter-accelerator networks;
//! * [`training`] — builds the task graph of one synchronous training step
//!   (forward / backward / gradient / update, with model-parallel output
//!   reductions, data-parallel gradient all-reduces, and junction
//!   redistributions) and runs it through the engine — for chain networks
//!   ([`training::simulate_step`]) and for branchy DAG segment
//!   decompositions ([`training::simulate_graph_step`], with
//!   branch-forwarding and join-gradient-accumulation junction tasks);
//! * [`StepReport`] — simulated time, energy, and traffic breakdowns;
//! * [`SimError`] — typed failures, so the planning service never panics
//!   on inconsistent simulation inputs.
//!
//! # Examples
//!
//! ```
//! use hypar_models::{zoo, NetworkShapes};
//! use hypar_sim::{ArchConfig, training};
//! use hypar_comm::NetworkCommTensors;
//! use hypar_core::{baselines, hierarchical};
//!
//! let shapes = NetworkShapes::infer(&zoo::lenet_c(), 256)?;
//! let net = NetworkCommTensors::from_shapes(&shapes);
//! let cfg = ArchConfig::paper();
//!
//! let hypar =
//!     training::simulate_step(&shapes, &hierarchical::partition(&net, 4), &cfg).unwrap();
//! let dp = training::simulate_step(&shapes, &baselines::all_data(&net, 4), &cfg).unwrap();
//! assert!(hypar.step_time < dp.step_time);
//! # Ok::<(), hypar_models::NetworkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
pub mod des;
mod energy;
mod error;
mod noc;
pub mod pe;
mod report;
pub mod training;

pub use config::ArchConfig;
pub use energy::EnergyModel;
pub use error::SimError;
pub use noc::Topology;
pub use report::{SimTraceSummary, StepReport};
