//! Inter-accelerator network topologies (paper §5, Figure 4c/d).

use std::fmt;

use serde::{Deserialize, Serialize};

/// The connection topology of the accelerator array.
///
/// HyPar's hierarchical partition produces a binary tree of group pairs;
/// at level `h` (0 = top) there are `2^h` pairs communicating
/// simultaneously.
///
/// * **H-tree** (physically a fat tree): the link bandwidth between groups
///   doubles at each level upward while the number of links halves, so the
///   cross-section bandwidth of every cut is constant.  This matches the
///   partition's traffic pattern.
/// * **Torus**: all links are identical; a group pair at any level
///   communicates over a single effective leaf-rate link, so upper-level
///   (large-tensor) exchanges are starved — the reason the torus loses in
///   Figure 12.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// The H-tree / fat-tree of Figure 4(c).
    #[default]
    HTree,
    /// The 2-D torus of Figure 4(d).
    Torus,
}

impl Topology {
    /// Bandwidth in bytes/s available to **one group pair** at hierarchy
    /// level `h` of `num_levels`, given the leaf link bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `h >= num_levels`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hypar_sim::Topology;
    ///
    /// let leaf = 200e6; // 1600 Mb/s
    /// // H-tree: top-level pair of a 16-accelerator array gets 8x leaf.
    /// assert_eq!(Topology::HTree.pair_bandwidth(0, 4, leaf), 1.6e9);
    /// assert_eq!(Topology::HTree.pair_bandwidth(3, 4, leaf), 200e6);
    /// // Torus: every pair talks at leaf rate.
    /// assert_eq!(Topology::Torus.pair_bandwidth(0, 4, leaf), 200e6);
    /// ```
    #[must_use]
    pub fn pair_bandwidth(self, h: usize, num_levels: usize, leaf_bytes_per_sec: f64) -> f64 {
        assert!(
            h < num_levels,
            "level {h} out of range for {num_levels} levels"
        );
        match self {
            Self::HTree => {
                let doublings = (num_levels - 1 - h) as i32;
                leaf_bytes_per_sec * 2f64.powi(doublings)
            }
            Self::Torus => leaf_bytes_per_sec,
        }
    }

    /// Total network bandwidth across all levels (the paper quotes
    /// 25.6 Gb/s = 16 × 1600 Mb/s for the 16-accelerator H-tree).
    #[must_use]
    pub fn total_bandwidth(self, num_levels: usize, leaf_bytes_per_sec: f64) -> f64 {
        (0..num_levels)
            .map(|h| (1u64 << h) as f64 * self.pair_bandwidth(h, num_levels, leaf_bytes_per_sec))
            .sum()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::HTree => write!(f, "H tree"),
            Self::Torus => write!(f, "torus"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn htree_cross_section_is_constant_per_level() {
        let leaf = 200e6;
        for h in 0..4 {
            let pairs = (1u64 << h) as f64;
            let cross = pairs * Topology::HTree.pair_bandwidth(h, 4, leaf);
            assert_eq!(cross, 1.6e9, "level {h}");
        }
    }

    #[test]
    fn htree_total_bandwidth_sums_level_cross_sections() {
        // Each of the 4 levels has a constant 1.6 GB/s cross-section; the
        // paper's quoted 25.6 Gb/s counts its 16 links at leaf rate, which
        // matches the torus total below.
        assert_eq!(Topology::HTree.total_bandwidth(4, 200e6), 4.0 * 1.6e9);
        // Torus: 15 pair-channels at leaf rate (8+4+2+1).
        assert_eq!(Topology::Torus.total_bandwidth(4, 200e6), 15.0 * 200e6);
    }

    #[test]
    fn torus_pairs_never_exceed_leaf_rate() {
        for h in 0..6 {
            assert_eq!(Topology::Torus.pair_bandwidth(h, 6, 200e6), 200e6);
        }
    }

    #[test]
    fn torus_is_slower_than_htree_above_the_leaves() {
        for h in 0..3 {
            assert!(
                Topology::Torus.pair_bandwidth(h, 4, 200e6)
                    < Topology::HTree.pair_bandwidth(h, 4, 200e6)
            );
        }
        assert_eq!(
            Topology::Torus.pair_bandwidth(3, 4, 200e6),
            Topology::HTree.pair_bandwidth(3, 4, 200e6)
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(Topology::HTree.to_string(), "H tree");
        assert_eq!(Topology::Torus.to_string(), "torus");
    }
}
