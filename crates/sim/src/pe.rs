//! Row-stationary processing-unit model (paper Figure 4(b)).
//!
//! The paper's accelerator uses Eyeriss-style row-stationary processing
//! units: a 12×14 grid of processing engines in which *weight rows* are
//! shared horizontally, *feature-map rows* diagonally, and *partial-sum
//! rows* accumulate vertically.  This module provides an analytical
//! mapping of convolutional and fully-connected layers onto that grid,
//! yielding:
//!
//! * **utilization** — the fraction of PEs doing useful work, which
//!   degrades for kernels taller than the array or output rows narrower
//!   than it;
//! * **cycle counts** — one MAC per PE per cycle over the mapped passes;
//! * **SRAM traffic per MAC** — the on-chip accesses that survive the
//!   row-stationary reuse (feature rows reused across the `K` filter rows
//!   diagonally, filter rows broadcast across output columns, partial sums
//!   accumulated through the array).
//!
//! The flat-roofline model used by default in [`crate::training`] assumes
//! perfect utilization; [`crate::ArchConfig::with_detailed_pe`] switches
//! the simulator to this mapping (the `pe` ablation experiment quantifies
//! the difference).
//!
//! # Examples
//!
//! ```
//! use hypar_sim::pe::PeArray;
//!
//! let array = PeArray::paper();
//! // A VGG-style 3x3 conv with 14-wide output maps fills the array well.
//! let conv = array.map_conv(3, 512, 512, 14, 14, 32);
//! assert!(conv.utilization > 0.8);
//! // A 5x5 kernel over a 4-row output leaves most of the array idle.
//! let small = array.map_conv(5, 50, 10, 4, 4, 32);
//! assert!(small.utilization < conv.utilization);
//! ```

use serde::{Deserialize, Serialize};

/// The physical PE grid of one processing unit.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PeArray {
    /// PE rows (paper: 12).
    pub rows: u64,
    /// PE columns (paper: 14).
    pub cols: u64,
    /// Clock frequency in Hz (paper: 250 MHz).
    pub clock_hz: f64,
    /// On-chip buffer in bytes (paper: 108 KB).
    pub buffer_bytes: u64,
}

/// The outcome of mapping one layer onto the PE grid.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    /// Fraction of PEs active during a pass (0, 1].
    pub utilization: f64,
    /// Total cycles to execute the layer's MACs on one processing unit.
    pub cycles: f64,
    /// Effective on-chip accesses per MAC after row-stationary reuse.
    pub sram_accesses_per_mac: f64,
}

impl PeArray {
    /// The paper's 168-PE row-stationary unit: 12×14 at 250 MHz with a
    /// 108 KB buffer (84 GOPS/s counting a MAC as two ops).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            rows: 12,
            cols: 14,
            clock_hz: 250e6,
            buffer_bytes: 108 * 1024,
        }
    }

    /// Total PEs in the grid.
    #[must_use]
    pub fn num_pes(&self) -> u64 {
        self.rows * self.cols
    }

    /// Peak throughput in MACs/s.
    #[must_use]
    pub fn peak_macs_per_sec(&self) -> f64 {
        self.num_pes() as f64 * self.clock_hz
    }

    /// Maps a convolutional layer: `k`×`k` kernels, `c_in`→`c_out`
    /// channels, `h_out`×`w_out` output maps, mini-batch `batch`.
    ///
    /// A *PE set* is `k` rows (one filter row each) by `min(h_out, cols)`
    /// columns (one output row each); sets for different filter/channel
    /// pairs stack vertically, kernels taller than the array fold into
    /// multiple vertical passes, and output maps wider than the array
    /// process in strips.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    #[must_use]
    pub fn map_conv(
        &self,
        k: u64,
        c_in: u64,
        c_out: u64,
        h_out: u64,
        w_out: u64,
        batch: u64,
    ) -> Mapping {
        assert!(
            k > 0 && c_in > 0 && c_out > 0 && h_out > 0 && w_out > 0 && batch > 0,
            "conv mapping requires positive dimensions"
        );
        // Vertical: kernels taller than the array fold over several passes.
        let k_eff = k.min(self.rows);
        let vertical_folds = k.div_ceil(self.rows);
        let sets_stacked = (self.rows / k_eff).max(1);
        // Horizontal: output rows process in strips of the array width.
        let strip_w = h_out.min(self.cols);
        let strips = h_out.div_ceil(self.cols);

        let used_pes = sets_stacked * k_eff * strip_w;
        let utilization = used_pes as f64 / self.num_pes() as f64;

        // One work unit: one (sample, c_in, c_out, fold) filter-row set
        // applied to one strip. Each PE performs a 1-D convolution of a
        // filter row over a feature row: k_eff MACs per output element,
        // w_out outputs.
        let work_units = batch as f64 * c_in as f64 * c_out as f64 * vertical_folds as f64;
        let passes = (work_units / sets_stacked as f64).ceil() * strips as f64;
        let cycles_per_pass = (k_eff * w_out) as f64;
        let cycles = passes * cycles_per_pass;

        // Row-stationary reuse: a feature-map value feeds k filter rows
        // (diagonal reuse), a weight value feeds up to `strip_w` output
        // rows (horizontal broadcast), and partial sums accumulate through
        // the column with one read + one write at the array edge per k
        // contributions.
        let sram_accesses_per_mac = 1.0 / k as f64 + 1.0 / strip_w as f64 + 2.0 / k as f64;

        Mapping {
            utilization,
            cycles,
            sram_accesses_per_mac,
        }
    }

    /// Maps a fully-connected layer: `c_in`→`c_out` neurons at mini-batch
    /// `batch`.
    ///
    /// Fully-connected layers have no convolutional reuse; PEs each own a
    /// slice of output neurons, with weight rows reused across the batch.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    #[must_use]
    pub fn map_fc(&self, c_in: u64, c_out: u64, batch: u64) -> Mapping {
        assert!(
            c_in > 0 && c_out > 0 && batch > 0,
            "fc mapping requires positive dimensions"
        );
        // Parallel work items: one per (output neuron, sample).
        let items = c_out * batch;
        let used = items.min(self.num_pes());
        let utilization = used as f64 / self.num_pes() as f64;
        let total_macs = (c_in * c_out * batch) as f64;
        let cycles = total_macs / used as f64;
        // Every MAC reads a fresh weight; the input activation is reused
        // across the c_out outputs mapped on-chip, and each output writes
        // its accumulator once per c_in chunk (amortized to ~0).
        let sram_accesses_per_mac = 1.0 + 1.0 / (batch as f64).min(self.cols as f64);
        Mapping {
            utilization,
            cycles,
            sram_accesses_per_mac,
        }
    }
}

impl Default for PeArray {
    fn default() -> Self {
        Self::paper()
    }
}

impl Mapping {
    /// Execution time on one processing unit at the given clock.
    #[must_use]
    pub fn seconds(&self, array: &PeArray) -> f64 {
        self.cycles / array.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_array_peaks_at_42_gmacs() {
        let array = PeArray::paper();
        assert_eq!(array.num_pes(), 168);
        // 42 GMAC/s = 84 GOPS/s at 2 ops per MAC.
        assert_eq!(array.peak_macs_per_sec(), 42e9);
        assert_eq!(array.buffer_bytes, 110_592);
    }

    #[test]
    fn mapping_cycle_counts_are_consistent_with_mac_counts() {
        // cycles x utilization x num_pes ≈ total MACs (up to edge effects).
        let array = PeArray::paper();
        let (k, c_in, c_out, h, w, b) = (3u64, 64, 128, 28, 28, 16);
        let m = array.map_conv(k, c_in, c_out, h, w, b);
        let total_macs = (k * k * c_in * c_out * h * w * b) as f64;
        let modeled = m.cycles * m.utilization * array.num_pes() as f64;
        let ratio = modeled / total_macs;
        assert!(
            (0.9..1.6).contains(&ratio),
            "cycle/MAC consistency ratio {ratio}"
        );
    }

    #[test]
    fn tall_kernels_fold() {
        let array = PeArray::paper();
        // A 24-row kernel needs two vertical folds on a 12-row array.
        let folded = array.map_conv(24, 1, 1, 14, 14, 1);
        let flat = array.map_conv(12, 1, 1, 14, 14, 1);
        assert!(folded.cycles > flat.cycles);
        assert_eq!(folded.utilization, 1.0);
    }

    #[test]
    fn narrow_outputs_waste_columns() {
        let array = PeArray::paper();
        let narrow = array.map_conv(3, 8, 8, 4, 4, 8); // 4-wide strips on 14 columns
        let wide = array.map_conv(3, 8, 8, 14, 14, 8);
        assert!(narrow.utilization < wide.utilization);
    }

    #[test]
    fn row_stationary_reuse_beats_fc() {
        let array = PeArray::paper();
        let conv = array.map_conv(3, 64, 64, 14, 14, 8);
        let fc = array.map_fc(4096, 4096, 8);
        assert!(conv.sram_accesses_per_mac < fc.sram_accesses_per_mac);
        // 3x3 conv: 1/3 + 1/14 + 2/3 ≈ 1.07 accesses per MAC.
        assert!((conv.sram_accesses_per_mac - (1.0 / 3.0 + 1.0 / 14.0 + 2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn fc_with_tiny_fanout_underutilizes() {
        let array = PeArray::paper();
        // 10 outputs x 4 samples = 40 busy PEs of 168.
        let m = array.map_fc(500, 10, 4);
        assert!((m.utilization - 40.0 / 168.0).abs() < 1e-12);
    }

    #[test]
    fn big_batches_saturate_fc() {
        let array = PeArray::paper();
        let m = array.map_fc(4096, 1000, 256);
        assert_eq!(m.utilization, 1.0);
        assert_eq!(m.cycles, (4096u64 * 1000 * 256) as f64 / 168.0);
    }

    #[test]
    fn seconds_uses_the_clock() {
        let array = PeArray::paper();
        let m = array.map_fc(1000, 168, 1);
        assert!((m.seconds(&array) - m.cycles / 250e6).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "positive dimensions")]
    fn zero_dimension_panics() {
        let _ = PeArray::paper().map_conv(0, 1, 1, 1, 1, 1);
    }
}
