//! Simulation results for one training step.

use hypar_tensor::{Bytes, Joules, Seconds};
use serde::{Deserialize, Serialize};

/// Shape of the discrete-event schedule behind a [`StepReport`]: a cheap
/// summary of the simulation trace that ships with every report (the
/// full event log stays internal — it is orders of magnitude larger).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimTraceSummary {
    /// DES tasks scheduled: compute stages, transfers, junction
    /// forwarding/accumulation, and synchronization barriers.
    pub tasks: u64,
    /// Resources the schedule ran over (processing units and links).
    pub resources: u64,
}

/// Measured outcome of simulating one synchronous training step on the
/// accelerator array.
///
/// The paper's metrics map onto this struct as:
/// * **performance** (Figure 6/11/12/13) — `1 / step_time`, compared via
///   [`StepReport::performance_gain_over`];
/// * **energy efficiency** (Figure 7/13) — energy *saving*, compared via
///   [`StepReport::energy_efficiency_over`];
/// * **total communication** (Figure 8/11) — `comm_bytes`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StepReport {
    /// Simulated wall-clock time of the training step.
    pub step_time: Seconds,
    /// Total energy of the step (compute + DRAM + network).
    pub energy: Joules,
    /// Energy spent in MACs and element-wise compute (incl. SRAM traffic).
    pub compute_energy: Joules,
    /// Energy spent in local DRAM (HMC vault) accesses.
    pub dram_energy: Joules,
    /// Energy spent moving tensors between accelerators.
    pub link_energy: Joules,
    /// Array-wide bytes moved between accelerators.
    pub comm_bytes: Bytes,
    /// `comm_bytes` broken down by hierarchy level (top first).
    pub comm_bytes_per_level: Vec<Bytes>,
    /// Array-wide bytes moved to/from local DRAM.
    pub dram_bytes: Bytes,
    /// Busy time of one accelerator's processing unit (the workload is
    /// symmetric across accelerators).
    pub compute_busy: Seconds,
    /// Busy time of the most-loaded network link.
    pub link_busy: Seconds,
    /// Per-accelerator DRAM footprint of weights + activations.
    pub dram_footprint_bytes: Bytes,
    /// Number of accelerators simulated.
    pub num_accelerators: u64,
    /// Size of the discrete-event schedule that produced this report.
    pub trace_summary: SimTraceSummary,
}

impl StepReport {
    /// Speedup of `self` relative to `baseline` (`> 1` means `self` is
    /// faster) — the y-axis of Figures 6, 11, 12 and 13.
    #[must_use]
    pub fn performance_gain_over(&self, baseline: &Self) -> f64 {
        baseline.step_time.value() / self.step_time.value()
    }

    /// Energy saving of `self` relative to `baseline` (`> 1` means `self`
    /// uses less energy) — the y-axis of Figure 7.
    #[must_use]
    pub fn energy_efficiency_over(&self, baseline: &Self) -> f64 {
        baseline.energy.value() / self.energy.value()
    }

    /// Whether the per-accelerator footprint fits the given DRAM capacity.
    #[must_use]
    pub fn fits_capacity(&self, capacity_bytes: f64) -> bool {
        self.dram_footprint_bytes.value() <= capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(time: f64, energy: f64) -> StepReport {
        StepReport {
            step_time: Seconds(time),
            energy: Joules(energy),
            compute_energy: Joules(energy),
            dram_energy: Joules::ZERO,
            link_energy: Joules::ZERO,
            comm_bytes: Bytes::ZERO,
            comm_bytes_per_level: vec![],
            dram_bytes: Bytes::ZERO,
            compute_busy: Seconds(time),
            link_busy: Seconds::ZERO,
            dram_footprint_bytes: Bytes(100.0),
            num_accelerators: 16,
            trace_summary: SimTraceSummary::default(),
        }
    }

    #[test]
    fn gains_are_ratios() {
        let fast = report(1.0, 2.0);
        let slow = report(4.0, 3.0);
        assert_eq!(fast.performance_gain_over(&slow), 4.0);
        assert_eq!(fast.energy_efficiency_over(&slow), 1.5);
        assert_eq!(slow.performance_gain_over(&fast), 0.25);
    }

    #[test]
    fn capacity_check() {
        let r = report(1.0, 1.0);
        assert!(r.fits_capacity(100.0));
        assert!(!r.fits_capacity(99.0));
    }
}
