//! Simulation results for one training step.

use hypar_telemetry::{StateHash, StateHasher};
use hypar_tensor::{Bytes, Joules, Seconds};
use serde::{Deserialize, Serialize};

/// Shape of the discrete-event schedule behind a [`StepReport`]: a cheap
/// summary of the simulation trace that ships with every report (the
/// full event log stays internal — it is orders of magnitude larger).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimTraceSummary {
    /// DES tasks scheduled: compute stages, transfers, junction
    /// forwarding/accumulation, and synchronization barriers.
    pub tasks: u64,
    /// Resources the schedule ran over (processing units and links).
    pub resources: u64,
}

/// Measured outcome of simulating one synchronous training step on the
/// accelerator array.
///
/// The paper's metrics map onto this struct as:
/// * **performance** (Figure 6/11/12/13) — `1 / step_time`, compared via
///   [`StepReport::performance_gain_over`];
/// * **energy efficiency** (Figure 7/13) — energy *saving*, compared via
///   [`StepReport::energy_efficiency_over`];
/// * **total communication** (Figure 8/11) — `comm_bytes`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StepReport {
    /// Simulated wall-clock time of the training step.
    pub step_time: Seconds,
    /// Total energy of the step (compute + DRAM + network).
    pub energy: Joules,
    /// Energy spent in MACs and element-wise compute (incl. SRAM traffic).
    pub compute_energy: Joules,
    /// Energy spent in local DRAM (HMC vault) accesses.
    pub dram_energy: Joules,
    /// Energy spent moving tensors between accelerators.
    pub link_energy: Joules,
    /// Array-wide bytes moved between accelerators.
    pub comm_bytes: Bytes,
    /// `comm_bytes` broken down by hierarchy level (top first).
    pub comm_bytes_per_level: Vec<Bytes>,
    /// Array-wide bytes moved to/from local DRAM.
    pub dram_bytes: Bytes,
    /// Busy time of one accelerator's processing unit (the workload is
    /// symmetric across accelerators).
    pub compute_busy: Seconds,
    /// Busy time of the most-loaded network link.
    pub link_busy: Seconds,
    /// Per-accelerator DRAM footprint of weights + activations.
    pub dram_footprint_bytes: Bytes,
    /// Number of accelerators simulated.
    pub num_accelerators: u64,
    /// Size of the discrete-event schedule that produced this report.
    pub trace_summary: SimTraceSummary,
}

impl StateHash for SimTraceSummary {
    fn state_hash_into(&self, h: &mut StateHasher) {
        h.write_str("sim-trace/v1");
        h.write_u64(self.tasks);
        h.write_u64(self.resources);
    }
}

impl StateHash for StepReport {
    /// Folds every field of the report **bit-exactly** (times, energies,
    /// and byte counts via [`f64::to_bits`], the per-level communication
    /// breakdown length-prefixed in level order), so any float-order or
    /// scheduling drift in the discrete-event simulation changes the
    /// digest even when the totals round to the same display value.
    fn state_hash_into(&self, h: &mut StateHasher) {
        h.write_str("report/v1");
        h.write_f64(self.step_time.value());
        h.write_f64(self.energy.value());
        h.write_f64(self.compute_energy.value());
        h.write_f64(self.dram_energy.value());
        h.write_f64(self.link_energy.value());
        h.write_f64(self.comm_bytes.value());
        h.write_u64(self.comm_bytes_per_level.len() as u64);
        for level in &self.comm_bytes_per_level {
            h.write_f64(level.value());
        }
        h.write_f64(self.dram_bytes.value());
        h.write_f64(self.compute_busy.value());
        h.write_f64(self.link_busy.value());
        h.write_f64(self.dram_footprint_bytes.value());
        h.write_u64(self.num_accelerators);
        self.trace_summary.state_hash_into(h);
    }
}

impl StepReport {
    /// Speedup of `self` relative to `baseline` (`> 1` means `self` is
    /// faster) — the y-axis of Figures 6, 11, 12 and 13.
    #[must_use]
    pub fn performance_gain_over(&self, baseline: &Self) -> f64 {
        baseline.step_time.value() / self.step_time.value()
    }

    /// Energy saving of `self` relative to `baseline` (`> 1` means `self`
    /// uses less energy) — the y-axis of Figure 7.
    #[must_use]
    pub fn energy_efficiency_over(&self, baseline: &Self) -> f64 {
        baseline.energy.value() / self.energy.value()
    }

    /// Whether the per-accelerator footprint fits the given DRAM capacity.
    #[must_use]
    pub fn fits_capacity(&self, capacity_bytes: f64) -> bool {
        self.dram_footprint_bytes.value() <= capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(time: f64, energy: f64) -> StepReport {
        StepReport {
            step_time: Seconds(time),
            energy: Joules(energy),
            compute_energy: Joules(energy),
            dram_energy: Joules::ZERO,
            link_energy: Joules::ZERO,
            comm_bytes: Bytes::ZERO,
            comm_bytes_per_level: vec![],
            dram_bytes: Bytes::ZERO,
            compute_busy: Seconds(time),
            link_busy: Seconds::ZERO,
            dram_footprint_bytes: Bytes(100.0),
            num_accelerators: 16,
            trace_summary: SimTraceSummary::default(),
        }
    }

    #[test]
    fn gains_are_ratios() {
        let fast = report(1.0, 2.0);
        let slow = report(4.0, 3.0);
        assert_eq!(fast.performance_gain_over(&slow), 4.0);
        assert_eq!(fast.energy_efficiency_over(&slow), 1.5);
        assert_eq!(slow.performance_gain_over(&fast), 0.25);
    }

    #[test]
    fn state_hash_is_sensitive_to_every_levels_worth_of_drift() {
        let base = report(1.0, 2.0);
        assert_eq!(base.state_hash(), report(1.0, 2.0).state_hash());
        // A one-ulp step-time drift changes the digest.
        let mut drifted = base.clone();
        drifted.step_time = Seconds(f64::from_bits(1.0f64.to_bits() + 1));
        assert_ne!(base.state_hash(), drifted.state_hash());
        // Moving bytes between levels changes the digest even when the
        // total is unchanged.
        let mut a = base.clone();
        a.comm_bytes_per_level = vec![Bytes(4.0), Bytes(2.0)];
        let mut b = base.clone();
        b.comm_bytes_per_level = vec![Bytes(2.0), Bytes(4.0)];
        assert_ne!(a.state_hash(), b.state_hash());
        // The DES schedule shape is pinned too.
        let mut tasks = base.clone();
        tasks.trace_summary.tasks = 7;
        assert_ne!(base.state_hash(), tasks.state_hash());
    }

    #[test]
    fn capacity_check() {
        let r = report(1.0, 1.0);
        assert!(r.fits_capacity(100.0));
        assert!(!r.fits_capacity(99.0));
    }
}
