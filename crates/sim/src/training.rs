//! Builds and runs the task graph of one synchronous training step.
//!
//! One step processes a mini-batch through forward propagation, error
//! backward propagation, gradient computation, and weight update (paper
//! §2.1, Equations 1–3), on every accelerator of the array.  The
//! parallelism plan injects communication:
//!
//! * **mp output reductions** — a layer in model parallelism produces
//!   full-width partial sums of `F_{l+1}` that the two groups of each mp
//!   level exchange before the next layer (Table 1);
//! * **junction redistributions** — adjacent layers with mismatched
//!   layouts exchange slices of `F_{l+1}` during forward and `E_{l+1}`
//!   during backward (Table 2);
//! * **dp gradient all-reduces** — a layer in data parallelism exchanges
//!   gradient partial sums before updating its replicated kernels
//!   (Table 1).
//!
//! Chain networks run through [`simulate_step`].  Branchy DAGs run through
//! [`simulate_graph_step`] on their [`SegmentCommGraph`] decomposition:
//! every segment is the same chain schedule, and each
//! [`hypar_graph::SegmentEdge`] junction adds **branch forwarding** tasks
//! (the producing segment's `F` tensor fans out to each consumer before
//! its forward pass), **join gradient accumulation** tasks (the error
//! `E` flows back along every in-edge of an `add`/`concat` before the
//! producing segment's backward pass), and — when
//! [`crate::ArchConfig::join_compute`] is enabled — a **join compute**
//! stage charging the element-wise accumulation/gather work of
//! materializing the joined tensor.  A branch-free DAG is one segment
//! with no edges, so its schedule — and therefore its [`StepReport`] — is
//! bit-identical to the linearized chain's.  All junction tensors (chain
//! and inter-segment alike) are scoped by the configured
//! [`hypar_comm::JunctionScaling`] interpretation, consumer layout by
//! default.
//!
//! With `overlap_comm = false` (the paper's setting) the step executes as
//! a strict sequence of stages separated by barriers; with `true`, tasks
//! are ordered only by their data dependencies, letting e.g. a gradient
//! all-reduce hide underneath the remaining backward pass — and, on a
//! branchy DAG, letting independent branches genuinely overlap.

use hypar_comm::{
    inter_split, intra_elems, junction_scale_between, LayerScale, NetworkCommTensors, Parallelism,
    ScaleState,
};
use hypar_core::HierarchicalPlan;
use hypar_graph::{SegmentCommGraph, SegmentEdge};
use hypar_models::NetworkShapes;
use hypar_tensor::{Bytes, Joules, Seconds};

use crate::des::{Engine, ResourceId, TaskId, TaskSpec};
use crate::pe::Mapping;
use crate::{ArchConfig, SimError, StepReport};

/// Simulates one training step of `shapes` under `plan` on the array
/// described by `cfg`.
///
/// # Errors
///
/// Returns [`SimError::LayerCountMismatch`] if the plan's layer count does
/// not match the network's.
///
/// # Examples
///
/// ```
/// use hypar_comm::NetworkCommTensors;
/// use hypar_core::baselines;
/// use hypar_models::{zoo, NetworkShapes};
/// use hypar_sim::{training, ArchConfig};
///
/// let shapes = NetworkShapes::infer(&zoo::sconv(), 256)?;
/// let net = NetworkCommTensors::from_shapes(&shapes);
/// let report =
///     training::simulate_step(&shapes, &baselines::all_data(&net, 4), &ArchConfig::paper())
///         .unwrap();
/// assert!(report.step_time.value() > 0.0);
/// assert_eq!(report.num_accelerators, 16);
/// # Ok::<(), hypar_models::NetworkError>(())
/// ```
pub fn simulate_step(
    shapes: &NetworkShapes,
    plan: &HierarchicalPlan,
    cfg: &ArchConfig,
) -> Result<StepReport, SimError> {
    Ok(chain_builder(shapes, plan, cfg, false)?.run().0)
}

/// Like [`simulate_step`], additionally returning the executed schedule as
/// a Chrome trace (see [`crate::des::Schedule::chrome_trace`]) for
/// visualization in `chrome://tracing` or Perfetto.
///
/// # Errors
///
/// Same as [`simulate_step`].
pub fn simulate_step_traced(
    shapes: &NetworkShapes,
    plan: &HierarchicalPlan,
    cfg: &ArchConfig,
) -> Result<(StepReport, String), SimError> {
    let (report, trace) = chain_builder(shapes, plan, cfg, true)?.run();
    Ok((report, trace.unwrap_or_default()))
}

/// Simulates one training step of a whole branchy DAG: the segment
/// decomposition `graph` under the stitched whole-model `plan` (one
/// dp/mp choice per weighted layer per level, segments concatenated in
/// canonical order, as produced by [`hypar_graph::partition_graph`] or
/// [`hypar_graph::stitch`]).
///
/// Each segment executes the identical chain schedule; the inter-segment
/// junctions add branch-forwarding `F` transfers before each consumer's
/// forward pass and join-gradient-accumulation `E` transfers before each
/// producer's backward pass, priced level by level exactly as
/// [`hypar_graph::inter_segment_elems`] prices them — so the report's
/// `comm_bytes` matches the stitched plan's analytic total.
///
/// # Errors
///
/// Returns [`SimError::LayerCountMismatch`] if the plan does not cover
/// exactly the graph's weighted layers.
///
/// # Examples
///
/// ```
/// use hypar_graph::{partition_graph, zoo};
/// use hypar_sim::{training, ArchConfig};
///
/// let graph = zoo::inception_mini().segments(128)?;
/// let plan = partition_graph(&graph, 4).unwrap();
/// let report = training::simulate_graph_step(&graph, &plan, &ArchConfig::paper()).unwrap();
/// assert!(report.step_time.value() > 0.0);
/// assert_eq!(report.num_accelerators, 16);
/// # Ok::<(), hypar_graph::GraphError>(())
/// ```
pub fn simulate_graph_step(
    graph: &SegmentCommGraph,
    plan: &HierarchicalPlan,
    cfg: &ArchConfig,
) -> Result<StepReport, SimError> {
    Ok(graph_builder(graph, plan, cfg, false)?.run().0)
}

/// Like [`simulate_graph_step`], additionally returning the executed
/// schedule as a Chrome trace.
///
/// # Errors
///
/// Same as [`simulate_graph_step`].
pub fn simulate_graph_step_traced(
    graph: &SegmentCommGraph,
    plan: &HierarchicalPlan,
    cfg: &ArchConfig,
) -> Result<(StepReport, String), SimError> {
    let (report, trace) = graph_builder(graph, plan, cfg, true)?.run();
    Ok((report, trace.unwrap_or_default()))
}

/// Simulates one training step on a **single** accelerator (an empty
/// hierarchy) — the normalization baseline of the paper's Figure 11.
///
/// # Errors
///
/// Propagates any [`SimError`] from the underlying simulation rather
/// than unwinding: the service must never pay for a malformed workload
/// with a worker thread.
pub fn simulate_single_accelerator(
    shapes: &NetworkShapes,
    cfg: &ArchConfig,
) -> Result<StepReport, SimError> {
    let plan = HierarchicalPlan::from_parts(
        shapes.name(),
        shapes.layers().iter().map(|l| l.name.clone()).collect(),
        Vec::new(),
        0.0,
    );
    simulate_step(shapes, &plan, cfg)
}

/// Validates and assembles the single-segment (chain) builder.
fn chain_builder<'a>(
    shapes: &'a NetworkShapes,
    plan: &HierarchicalPlan,
    cfg: &'a ArchConfig,
    trace: bool,
) -> Result<Builder<'a>, SimError> {
    if plan.num_layers() != shapes.len() {
        return Err(SimError::LayerCountMismatch {
            plan_layers: plan.num_layers(),
            network_layers: shapes.len(),
        });
    }
    let seg = Seg::new(
        shapes,
        NetworkCommTensors::from_shapes(shapes),
        plan.clone(),
    );
    Ok(Builder::new(
        vec![seg],
        Vec::new(),
        plan.num_levels(),
        cfg,
        trace,
    ))
}

/// Validates the stitched plan against the graph, splits it back into
/// per-segment sub-plans, and assembles the multi-segment builder.
fn graph_builder<'a>(
    graph: &'a SegmentCommGraph,
    plan: &HierarchicalPlan,
    cfg: &'a ArchConfig,
    trace: bool,
) -> Result<Builder<'a>, SimError> {
    if plan.num_layers() != graph.num_layers() {
        return Err(SimError::LayerCountMismatch {
            plan_layers: plan.num_layers(),
            network_layers: graph.num_layers(),
        });
    }
    let mut segs = Vec::with_capacity(graph.num_segments());
    let mut offset = 0;
    for (s, tensors) in graph.segments().iter().enumerate() {
        let len = tensors.len();
        let levels: Vec<Vec<Parallelism>> = plan
            .levels()
            .iter()
            .map(|level| level[offset..offset + len].to_vec())
            .collect();
        let names = plan.layer_names()[offset..offset + len].to_vec();
        // The sub-plan total is never read — the simulator re-derives all
        // traffic from the per-level choices.
        let sub = HierarchicalPlan::from_parts(tensors.name(), names, levels, 0.0);
        segs.push(Seg::new(graph.segment_shapes(s), tensors.clone(), sub));
        offset += len;
    }
    Ok(Builder::new(
        segs,
        graph.edges().to_vec(),
        plan.num_levels(),
        cfg,
        trace,
    ))
}

/// One chain segment's planning context inside a step simulation.  A chain
/// network is exactly one `Seg`; a DAG is one per decomposed segment.
struct Seg<'a> {
    shapes: &'a NetworkShapes,
    net: NetworkCommTensors,
    plan: HierarchicalPlan,
    /// Scale state *above* each level (index `h`), plus the leaf state at
    /// index `H`.
    scales_at: Vec<ScaleState>,
}

impl<'a> Seg<'a> {
    fn new(shapes: &'a NetworkShapes, net: NetworkCommTensors, plan: HierarchicalPlan) -> Self {
        let mut scales_at = Vec::with_capacity(plan.num_levels() + 1);
        let mut s = ScaleState::identity(net.len());
        scales_at.push(s.clone());
        for level in plan.levels() {
            s = s.descend(level);
            scales_at.push(s.clone());
        }
        Self {
            shapes,
            net,
            plan,
            scales_at,
        }
    }

    fn len(&self) -> usize {
        self.net.len()
    }

    fn leaf(&self, l: usize) -> LayerScale {
        self.scales_at[self.plan.num_levels()].layer(l)
    }
}

/// Incrementally assembles the step's task graph over one or more chain
/// segments joined by junction edges.
struct Builder<'a> {
    segs: Vec<Seg<'a>>,
    edges: Vec<SegmentEdge>,
    num_levels: usize,
    cfg: &'a ArchConfig,
    engine: Engine,
    accels: Vec<ResourceId>,
    /// `links[h][p]`: the pair-`p` channel at hierarchy level `h`.
    links: Vec<Vec<ResourceId>>,
    barrier_res: ResourceId,
    /// Whether to label tasks for trace export.
    trace: bool,
    // Accounting.
    compute_energy: Joules,
    dram_energy: Joules,
    link_energy: Joules,
    comm_bytes_per_level: Vec<f64>,
    dram_bytes: f64,
}

impl<'a> Builder<'a> {
    fn new(
        segs: Vec<Seg<'a>>,
        edges: Vec<SegmentEdge>,
        num_levels: usize,
        cfg: &'a ArchConfig,
        trace: bool,
    ) -> Self {
        let n = 1usize << num_levels;
        let mut engine = Engine::new();
        let accels = (0..n)
            .map(|i| engine.add_resource(format!("accel{i}")))
            .collect();
        let links = (0..num_levels)
            .map(|h| {
                (0..(1usize << h))
                    .map(|p| engine.add_resource(format!("link{h}.{p}")))
                    .collect()
            })
            .collect();
        let barrier_res = engine.add_resource("barrier");

        Self {
            segs,
            edges,
            num_levels,
            cfg,
            engine,
            accels,
            links,
            barrier_res,
            trace,
            compute_energy: Joules::ZERO,
            dram_energy: Joules::ZERO,
            link_energy: Joules::ZERO,
            comm_bytes_per_level: vec![0.0; num_levels],
            dram_bytes: 0.0,
        }
    }

    fn num_accels(&self) -> usize {
        self.accels.len()
    }

    /// A zero-duration join of `deps` on the dedicated barrier resource.
    fn barrier(&mut self, deps: &[TaskId]) -> TaskId {
        self.engine
            .add_task(TaskSpec::new(self.barrier_res, Seconds(0.0)).after_all(deps.iter().copied()))
    }

    /// The row-stationary mapping for segment `s` layer `l`'s
    /// per-accelerator slice, when the detailed PE model is enabled.
    fn layer_mapping(&self, s: usize, l: usize) -> Option<Mapping> {
        if !self.cfg.detailed_pe {
            return None;
        }
        let shape = self.segs[s].shapes.layer(l);
        let leaf = self.segs[s].leaf(l);
        let scaled = |v: u64, frac: f64| ((v as f64 * frac).ceil() as u64).max(1);
        let batch = scaled(shape.batch, leaf.batch_fraction().value());
        Some(if shape.is_conv {
            self.cfg.pe_array.map_conv(
                shape.kernel_extent,
                scaled(shape.input.channels, leaf.input_fraction().value()),
                shape.conv_out.channels,
                shape.conv_out.height,
                shape.conv_out.width,
                batch,
            )
        } else {
            self.cfg.pe_array.map_fc(
                scaled(shape.input.volume(), leaf.input_fraction().value()),
                shape.conv_out.channels,
                batch,
            )
        })
    }

    /// One compute phase replicated on every accelerator.
    fn compute_stage(
        &mut self,
        macs_total: f64,
        elementwise_total: f64,
        dram_bytes_per_accel: f64,
        mapping: Option<Mapping>,
        label: &str,
        deps: &[TaskId],
    ) -> Vec<TaskId> {
        let n = self.num_accels() as f64;
        let macs = macs_total / n;
        let elementwise = elementwise_total / n;
        let compute_time = match mapping {
            Some(m) => {
                // Row-stationary mapping: the PE grid runs at its mapped
                // utilization; element-wise work proceeds at peak.
                let pus = f64::from(self.cfg.pus_per_accelerator);
                let eff = self.cfg.pe_array.peak_macs_per_sec() * m.utilization * pus;
                macs / eff + elementwise / self.cfg.node_ops_per_sec()
            }
            None => (2.0 * macs + elementwise) / self.cfg.node_ops_per_sec(),
        };
        let duration =
            Seconds(compute_time.max(dram_bytes_per_accel / self.cfg.dram_bytes_per_sec));
        let sram_per_mac = mapping.map_or(self.cfg.energy.sram_accesses_per_mac, |m| {
            m.sram_accesses_per_mac
        });
        self.compute_energy += (self.cfg.energy.compute_with_sram(macs, sram_per_mac)
            + self.cfg.energy.elementwise(elementwise))
            * n;
        self.dram_energy += self.cfg.energy.dram(dram_bytes_per_accel) * n;
        self.dram_bytes += dram_bytes_per_accel * n;

        (0..self.num_accels())
            .map(|i| {
                let mut spec =
                    TaskSpec::new(self.accels[i], duration).after_all(deps.iter().copied());
                if self.trace {
                    spec = spec.label(label);
                }
                self.engine.add_task(spec)
            })
            .collect()
    }

    /// One transfer of `elems` tensor elements (both directions combined)
    /// on every pair-channel of level `h`.
    fn comm_stage(&mut self, h: usize, elems: f64, label: &str, deps: &[TaskId]) -> Vec<TaskId> {
        let bytes_pair = elems * f64::from(self.cfg.precision_bytes);
        let bw =
            self.cfg
                .topology
                .pair_bandwidth(h, self.num_levels, self.cfg.leaf_link_bytes_per_sec);
        // Full-duplex channel: the two directions flow simultaneously.
        let duration = Seconds(bytes_pair / 2.0 / bw);
        let pairs = self.links[h].len();
        self.comm_bytes_per_level[h] += bytes_pair * pairs as f64;
        self.link_energy += self.cfg.energy.link(bytes_pair) * pairs as f64;

        (0..pairs)
            .map(|p| {
                let mut spec =
                    TaskSpec::new(self.links[h][p], duration).after_all(deps.iter().copied());
                if self.trace {
                    spec = spec.label(label);
                }
                self.engine.add_task(spec)
            })
            .collect()
    }

    /// Levels at which segment `s` layer `l` is assigned `p`, deepest level
    /// first (the order partial sums combine up the tree).
    fn levels_with(&self, s: usize, l: usize, p: Parallelism) -> Vec<usize> {
        (0..self.num_levels)
            .rev()
            .filter(|&h| self.segs[s].plan.choice(h, l) == p)
            .collect()
    }

    /// Schedules the level-by-level transfers of one inter-segment
    /// junction — branch forwarding (`forward`, the `F` tensor) or join
    /// gradient accumulation (backward, the `E` tensor) — pricing each
    /// level exactly as [`hypar_graph::inter_segment_elems`] does: under
    /// the committed parallelisms of the two boundary layers, scoped by
    /// the configured [`hypar_comm::JunctionScaling`] interpretation.
    /// Levels whose transfer is free (dp→dp) add no tasks.
    fn edge_comm(&mut self, edge: SegmentEdge, forward: bool, deps: &[TaskId]) -> Vec<TaskId> {
        let last = self.segs[edge.from].len() - 1;
        let label = if self.trace {
            format!(
                "xfer {} {}->{}",
                if forward { "F" } else { "E" },
                self.segs[edge.from].net.layer(last).name,
                self.segs[edge.to].net.layer(0).name
            )
        } else {
            String::new()
        };
        let mut producer_scale = LayerScale::IDENTITY;
        let mut consumer_scale = LayerScale::IDENTITY;
        let mut tasks = Vec::new();
        for h in 0..self.num_levels {
            let prev = self.segs[edge.from].plan.choice(h, last);
            let next = self.segs[edge.to].plan.choice(h, 0);
            let scale =
                junction_scale_between(producer_scale, consumer_scale, self.cfg.junction_scaling);
            let (f_elems, e_elems) = inter_split(prev, next, edge.elems, scale);
            let elems = if forward { f_elems } else { e_elems };
            if elems > 0.0 {
                tasks.extend(self.comm_stage(h, elems, &label, deps));
            }
            producer_scale = producer_scale.descend(prev);
            consumer_scale = consumer_scale.descend(next);
        }
        tasks
    }

    /// The frontier segment `s`'s forward pass starts from: its incoming
    /// branch-forwarding transfers, scheduled behind the global frontier
    /// (barrier mode) or behind each producer's forward exit (overlap
    /// mode).  An edge whose transfer is free at every level still imposes
    /// its producer's data dependency.  When the incoming edges carry join
    /// work (`add` accumulation / `concat` gather) and
    /// [`crate::ArchConfig::join_compute`] is enabled, an element-wise
    /// compute stage materializes the joined tensor once every
    /// contribution has arrived.
    fn forward_entry(
        &mut self,
        s: usize,
        stage_end: &[TaskId],
        fwd_exit: &[Vec<TaskId>],
        barrier_mode: bool,
    ) -> Vec<TaskId> {
        let incoming: Vec<SegmentEdge> = self.edges.iter().copied().filter(|e| e.to == s).collect();
        let entry = if barrier_mode {
            let mut tasks = Vec::new();
            for &edge in &incoming {
                tasks.extend(self.edge_comm(edge, true, stage_end));
            }
            if tasks.is_empty() {
                stage_end.to_vec()
            } else {
                vec![self.barrier(&tasks)]
            }
        } else {
            let mut deps = Vec::new();
            for &edge in &incoming {
                let producer_exit = fwd_exit[edge.from].clone();
                let tasks = self.edge_comm(edge, true, &producer_exit);
                if tasks.is_empty() {
                    deps.extend(producer_exit);
                } else {
                    deps.extend(tasks);
                }
            }
            deps
        };
        let join_elems: f64 = incoming.iter().map(|e| e.join_elems).sum();
        // hypar-allow: det-float-eq — exact-zero skip: a join stage is only scheduled when traffic exists, and absent traffic is an exact 0.0 sum
        if !self.cfg.join_compute || join_elems == 0.0 {
            return entry;
        }
        // The accumulation cannot start before every branch tensor has
        // arrived, so the join is a synchronization point in both modes.
        let head = self.segs[s].net.layer(0).name.clone();
        let deps = vec![self.barrier(&entry)];
        let tasks = self.compute_stage(0.0, join_elems, 0.0, None, &format!("join {head}"), &deps);
        vec![self.barrier(&tasks)]
    }

    /// The frontier segment `s`'s backward pass starts from: the join
    /// gradient accumulation along every out-edge — the error tensor flows
    /// back from each consumer before the producing segment's tail resumes
    /// — behind the global frontier (barrier mode) or behind each
    /// consumer's backward exit (overlap mode).  The sink segment (no
    /// out-edges) starts at the loss turnaround.
    fn backward_entry(
        &mut self,
        s: usize,
        bwd_frontier: &[TaskId],
        bwd_exit: &[Vec<TaskId>],
        barrier_mode: bool,
    ) -> Vec<TaskId> {
        let outgoing: Vec<SegmentEdge> =
            self.edges.iter().copied().filter(|e| e.from == s).collect();
        if barrier_mode || outgoing.is_empty() {
            let mut tasks = Vec::new();
            for &edge in &outgoing {
                tasks.extend(self.edge_comm(edge, false, bwd_frontier));
            }
            if tasks.is_empty() {
                bwd_frontier.to_vec()
            } else {
                vec![self.barrier(&tasks)]
            }
        } else {
            let mut contributions = Vec::new();
            for &edge in &outgoing {
                let consumer_exit = bwd_exit[edge.to].clone();
                let tasks = self.edge_comm(edge, false, &consumer_exit);
                if tasks.is_empty() {
                    contributions.extend(consumer_exit);
                } else {
                    contributions.extend(tasks);
                }
            }
            // The accumulation point: every consumer's error has arrived.
            vec![self.barrier(&contributions)]
        }
    }

    /// The forward pass of segment `s`, entered at `stage_end`; returns
    /// the frontier past the segment's last layer.
    fn forward_segment(&mut self, s: usize, mut stage_end: Vec<TaskId>) -> Vec<TaskId> {
        let num_layers = self.segs[s].len();
        let precision = f64::from(self.cfg.precision_bytes);
        for l in 0..num_layers {
            let layer = self.segs[s].shapes.layer(l).clone();
            let leaf = self.segs[s].leaf(l);
            let view = self.segs[s].net.layer(l).clone();

            // Forward compute: read W and F_l slices, write F_{l+1} slice.
            let dram = (view.weight_elems * leaf.weight_scale()
                + view.input_elems * leaf.input_scale()
                + view.output_elems * leaf.output_scale())
                * precision;
            let deps = stage_end.clone();
            let mapping = self.layer_mapping(s, l);
            let mut tasks = self.compute_stage(
                layer.macs_forward as f64,
                layer.elementwise_ops as f64,
                dram,
                mapping,
                &format!("fwd {}", layer.name),
                &deps,
            );

            // mp output reductions, deepest level first (partial sums
            // combine pairwise up the tree, each level on its own links).
            for h in self.levels_with(s, l, Parallelism::Model) {
                let elems = intra_elems(
                    Parallelism::Model,
                    &view,
                    self.segs[s].scales_at[h].layer(l),
                );
                let deps = vec![self.barrier(&tasks)];
                tasks = self.comm_stage(h, elems, &format!("reduce F {}", layer.name), &deps);
            }

            // Forward junction redistribution to layer l+1.
            if l + 1 < num_layers {
                let mut junction_tasks = Vec::new();
                for h in 0..self.num_levels {
                    let (f_elems, _) = inter_split(
                        self.segs[s].plan.choice(h, l),
                        self.segs[s].plan.choice(h, l + 1),
                        view.junction_elems,
                        self.segs[s].scales_at[h].junction_scale_with(l, self.cfg.junction_scaling),
                    );
                    if f_elems > 0.0 {
                        let deps = vec![self.barrier(&tasks)];
                        let label = format!("xfer F {}", layer.name);
                        junction_tasks.extend(self.comm_stage(h, f_elems, &label, &deps));
                    }
                }
                if !junction_tasks.is_empty() {
                    tasks = junction_tasks;
                }
            }

            stage_end = vec![self.barrier(&tasks)];
        }
        stage_end
    }

    /// The backward + gradient pass of segment `s`, entered at
    /// `bwd_frontier`; returns the frontier past the segment's head and
    /// appends every weight-update task to `updates`.
    fn backward_segment(
        &mut self,
        s: usize,
        mut bwd_frontier: Vec<TaskId>,
        updates: &mut Vec<TaskId>,
    ) -> Vec<TaskId> {
        let num_layers = self.segs[s].len();
        let precision = f64::from(self.cfg.precision_bytes);
        let barrier_mode = !self.cfg.overlap_comm;
        // A head fed by another segment must propagate the error across
        // its junction; only a head fed by the raw graph input skips the
        // backward computation (the chain's "not for the first layer").
        let has_producer = self.edges.iter().any(|e| e.to == s);

        for l in (0..num_layers).rev() {
            let layer = self.segs[s].shapes.layer(l).clone();
            let leaf = self.segs[s].leaf(l);
            let view = self.segs[s].net.layer(l).clone();

            // Backward junction: E_{l+1} redistribution from layer l+1.
            if l + 1 < num_layers {
                let mut junction_tasks = Vec::new();
                for h in 0..self.num_levels {
                    let (_, e_elems) = inter_split(
                        self.segs[s].plan.choice(h, l),
                        self.segs[s].plan.choice(h, l + 1),
                        view.junction_elems,
                        self.segs[s].scales_at[h].junction_scale_with(l, self.cfg.junction_scaling),
                    );
                    if e_elems > 0.0 {
                        let deps = vec![self.barrier(&bwd_frontier)];
                        let label = format!("xfer E {}", layer.name);
                        junction_tasks.extend(self.comm_stage(h, e_elems, &label, &deps));
                    }
                }
                if !junction_tasks.is_empty() {
                    bwd_frontier = vec![self.barrier(&junction_tasks)];
                }
            }

            // Error backward (not for the network's first layer) and
            // gradient computation; both need E_{l+1} (and locally
            // retained F_l/W_l).
            let mut phase_tasks = Vec::new();
            let mapping = self.layer_mapping(s, l);
            if l > 0 || has_producer {
                let dram = (view.weight_elems * leaf.weight_scale()
                    + view.output_elems * leaf.output_scale()
                    + view.input_elems * leaf.input_scale())
                    * precision;
                let deps = bwd_frontier.clone();
                phase_tasks.extend(self.compute_stage(
                    layer.macs_backward() as f64,
                    0.0,
                    dram,
                    mapping,
                    &format!("bwd {}", layer.name),
                    &deps,
                ));
            }
            let dram = (view.input_elems * leaf.input_scale()
                + view.output_elems * leaf.output_scale()
                + view.weight_elems * leaf.weight_scale())
                * precision;
            let deps = bwd_frontier.clone();
            let grad_tasks = self.compute_stage(
                layer.macs_gradient() as f64,
                0.0,
                dram,
                mapping,
                &format!("grad {}", layer.name),
                &deps,
            );
            phase_tasks.extend(grad_tasks.iter().copied());

            // In barrier mode everything downstream waits here; in overlap
            // mode only the all-reduce chain depends on the gradients while
            // the backward error continues independently.
            let grad_barrier = self.barrier(&grad_tasks);
            let phase_barrier = self.barrier(&phase_tasks);

            // dp gradient all-reduce, deepest level first.
            let mut reduce_tail = vec![grad_barrier];
            for h in self.levels_with(s, l, Parallelism::Data) {
                let elems =
                    intra_elems(Parallelism::Data, &view, self.segs[s].scales_at[h].layer(l));
                let deps = reduce_tail.clone();
                let label = format!("allreduce dW {}", layer.name);
                let tasks = self.comm_stage(h, elems, &label, &deps);
                reduce_tail = vec![self.barrier(&tasks)];
            }

            // Weight update: read ΔW, write W (element-wise add).
            let w_slice = view.weight_elems * leaf.weight_scale();
            let update_deps = if barrier_mode {
                // Serialize: update waits for this layer's comm and compute.
                vec![self.barrier(&[reduce_tail[0], phase_barrier])]
            } else {
                reduce_tail.clone()
            };
            let update_tasks = self.compute_stage(
                0.0,
                w_slice,
                2.0 * w_slice * precision,
                None,
                &format!("update {}", layer.name),
                &update_deps,
            );
            updates.extend(update_tasks.iter().copied());

            // Next (shallower) layer's backward frontier.
            bwd_frontier = if barrier_mode {
                vec![self.barrier(&[reduce_tail[0], phase_barrier])]
            } else {
                vec![phase_barrier]
            };
        }
        bwd_frontier
    }

    fn run(mut self) -> (StepReport, Option<String>) {
        let num_segs = self.segs.len();
        let barrier_mode = !self.cfg.overlap_comm;

        // ---------------- Forward pass ----------------
        // Segments run in index order — a topological order of the segment
        // graph, since every edge points from a lower to a higher index.
        // In barrier mode one global frontier serializes everything,
        // reproducing the paper's phase-ordered step; in overlap mode each
        // segment starts as soon as its own inputs are ready, so
        // independent branches genuinely overlap.
        let mut fwd_exit: Vec<Vec<TaskId>> = vec![Vec::new(); num_segs];
        let mut stage_end: Vec<TaskId> = Vec::new();
        for s in 0..num_segs {
            let entry = self.forward_entry(s, &stage_end, &fwd_exit, barrier_mode);
            let exit = self.forward_segment(s, entry);
            fwd_exit[s] = exit.clone();
            stage_end = exit;
        }

        // ---------------- Backward + gradient ----------------
        // Reverse topological order.  The loss turnaround: the sink
        // segment's backward starts once the whole forward pass (its own
        // frontier, transitively everything) completes.
        let mut updates: Vec<TaskId> = Vec::new();
        let mut bwd_exit: Vec<Vec<TaskId>> = vec![Vec::new(); num_segs];
        let mut bwd_frontier: Vec<TaskId> = stage_end;
        for s in (0..num_segs).rev() {
            let entry = self.backward_entry(s, &bwd_frontier, &bwd_exit, barrier_mode);
            let exit = self.backward_segment(s, entry, &mut updates);
            bwd_exit[s] = exit.clone();
            bwd_frontier = exit;
        }

        // The step completes when every update (and every segment's final
        // backward frontier) has finished.
        let mut finale: Vec<TaskId> = bwd_exit.into_iter().flatten().collect();
        finale.extend(updates);
        let _ = self.barrier(&finale);

        self.finish()
    }

    fn finish(self) -> (StepReport, Option<String>) {
        let Self {
            segs,
            cfg,
            engine,
            accels,
            links,
            trace,
            num_levels,
            compute_energy,
            dram_energy,
            link_energy,
            comm_bytes_per_level,
            dram_bytes,
            ..
        } = self;

        let trace_summary = crate::SimTraceSummary {
            tasks: engine.num_tasks() as u64,
            resources: engine.num_resources() as u64,
        };
        let schedule = engine.run();
        let chrome_trace = trace.then(|| schedule.chrome_trace());
        let compute_busy = schedule.busy_time(accels[0]);
        let link_busy = links
            .iter()
            .flatten()
            .map(|&r| schedule.busy_time(r))
            .fold(Seconds::ZERO, |a, b| if b > a { b } else { a });

        // Per-accelerator resident footprint: weight, input and output
        // slices of every layer (activations are retained for the backward
        // pass).
        let precision = f64::from(cfg.precision_bytes);
        let footprint: f64 = segs
            .iter()
            .map(|seg| {
                let leaf_state = &seg.scales_at[num_levels];
                seg.net
                    .layers()
                    .iter()
                    .enumerate()
                    .map(|(l, v)| {
                        let s = leaf_state.layer(l);
                        (v.weight_elems * s.weight_scale()
                            + v.input_elems * s.input_scale()
                            + v.output_elems * s.output_scale())
                            * precision
                    })
                    .sum::<f64>()
            })
            .sum();

        let comm_total: f64 = comm_bytes_per_level.iter().sum();
        let report = StepReport {
            step_time: schedule.makespan(),
            energy: compute_energy + dram_energy + link_energy,
            compute_energy,
            dram_energy,
            link_energy,
            comm_bytes: Bytes(comm_total),
            comm_bytes_per_level: comm_bytes_per_level.into_iter().map(Bytes).collect(),
            dram_bytes: Bytes(dram_bytes),
            compute_busy,
            link_busy,
            dram_footprint_bytes: Bytes(footprint),
            num_accelerators: accels.len() as u64,
            trace_summary,
        };
        (report, chrome_trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypar_comm::JunctionScaling;
    use hypar_core::{baselines, hierarchical};
    use hypar_graph::{partition_graph, partition_graph_with, plan_segments, zoo as graph_zoo};
    use hypar_models::zoo;

    fn setup(name: &str, batch: u64) -> (NetworkShapes, NetworkCommTensors) {
        let shapes = NetworkShapes::infer(&zoo::by_name(name).unwrap(), batch).unwrap();
        let net = NetworkCommTensors::from_shapes(&shapes);
        (shapes, net)
    }

    #[test]
    fn single_accelerator_has_no_communication() {
        let (shapes, _) = setup("Lenet-c", 256);
        let report = simulate_single_accelerator(&shapes, &ArchConfig::paper()).unwrap();
        assert_eq!(report.num_accelerators, 1);
        assert!(report.comm_bytes.is_zero());
        assert!(report.link_energy.is_zero());
        assert!(report.step_time.value() > 0.0);
    }

    #[test]
    fn comm_bytes_match_the_cost_model() {
        // The simulator's traffic accounting must equal evaluate_plan's.
        let (shapes, net) = setup("Lenet-c", 256);
        for plan in [
            hierarchical::partition(&net, 4),
            baselines::all_data(&net, 4),
            baselines::all_model(&net, 4),
            baselines::one_weird_trick(&net, 4),
        ] {
            let report = simulate_step(&shapes, &plan, &ArchConfig::paper()).unwrap();
            let expected = plan.total_comm_bytes();
            assert!(
                (report.comm_bytes.value() - expected.value()).abs()
                    <= 1e-6 * expected.value().max(1.0),
                "sim {} vs model {}",
                report.comm_bytes,
                expected
            );
        }
    }

    #[test]
    fn hypar_is_faster_than_data_parallelism_on_lenet() {
        let (shapes, net) = setup("Lenet-c", 256);
        let cfg = ArchConfig::paper();
        let hypar = simulate_step(&shapes, &hierarchical::partition(&net, 4), &cfg).unwrap();
        let dp = simulate_step(&shapes, &baselines::all_data(&net, 4), &cfg).unwrap();
        let mp = simulate_step(&shapes, &baselines::all_model(&net, 4), &cfg).unwrap();
        assert!(hypar.performance_gain_over(&dp) > 1.0);
        assert!(
            dp.performance_gain_over(&mp) > 1.0,
            "mp should be worst for Lenet-c"
        );
    }

    #[test]
    fn sixteen_accelerators_beat_one_for_vgg() {
        let (shapes, net) = setup("VGG-A", 256);
        let cfg = ArchConfig::paper();
        let one = simulate_single_accelerator(&shapes, &cfg).unwrap();
        let hypar = simulate_step(&shapes, &hierarchical::partition(&net, 4), &cfg).unwrap();
        let gain = hypar.performance_gain_over(&one);
        assert!(
            gain > 4.0,
            "16 accelerators should give a solid speedup, got {gain:.2}"
        );
        assert!(
            gain <= 16.0,
            "speedup cannot exceed the accelerator count, got {gain:.2}"
        );
    }

    #[test]
    fn overlap_never_hurts() {
        let (shapes, net) = setup("AlexNet", 256);
        let plan = baselines::all_data(&net, 4);
        let serial = simulate_step(&shapes, &plan, &ArchConfig::paper()).unwrap();
        let overlap =
            simulate_step(&shapes, &plan, &ArchConfig::paper().with_overlap(true)).unwrap();
        assert!(overlap.step_time <= serial.step_time);
        // Traffic and energy are schedule-independent.
        assert_eq!(overlap.comm_bytes, serial.comm_bytes);
        assert_eq!(overlap.energy, serial.energy);
    }

    #[test]
    fn torus_is_never_faster_than_htree() {
        let (shapes, net) = setup("Cifar-c", 256);
        let plan = hierarchical::partition(&net, 4);
        let htree = simulate_step(&shapes, &plan, &ArchConfig::paper()).unwrap();
        let torus = simulate_step(
            &shapes,
            &plan,
            &ArchConfig::paper().with_topology(crate::Topology::Torus),
        )
        .unwrap();
        assert!(torus.step_time >= htree.step_time);
        assert_eq!(torus.comm_bytes, htree.comm_bytes);
    }

    #[test]
    fn energy_components_sum() {
        let (shapes, net) = setup("Cifar-c", 256);
        let report = simulate_step(
            &shapes,
            &hierarchical::partition(&net, 4),
            &ArchConfig::paper(),
        )
        .unwrap();
        let sum = report.compute_energy + report.dram_energy + report.link_energy;
        assert!((report.energy.value() - sum.value()).abs() < 1e-12);
        assert!(report.compute_energy.value() > 0.0);
        assert!(report.dram_energy.value() > 0.0);
        assert!(report.link_energy.value() > 0.0);
    }

    #[test]
    fn determinism() {
        let (shapes, net) = setup("AlexNet", 256);
        let plan = hierarchical::partition(&net, 4);
        let a = simulate_step(&shapes, &plan, &ArchConfig::paper()).unwrap();
        let b = simulate_step(&shapes, &plan, &ArchConfig::paper()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn traced_run_matches_untraced_and_labels_phases() {
        let (shapes, net) = setup("Lenet-c", 256);
        let plan = hierarchical::partition(&net, 4);
        let cfg = ArchConfig::paper();
        let plain = simulate_step(&shapes, &plan, &cfg).unwrap();
        let (traced, trace) = simulate_step_traced(&shapes, &plan, &cfg).unwrap();
        assert_eq!(plain, traced);
        for needle in [
            "fwd conv1",
            "grad fc2",
            "allreduce dW conv1",
            "reduce F fc1",
            "accel0",
        ] {
            assert!(trace.contains(needle), "trace missing `{needle}`");
        }
        // Valid-enough JSON: balanced brackets, one event per line.
        assert!(trace.trim_start().starts_with('['));
        assert!(trace.trim_end().ends_with(']'));
    }

    #[test]
    fn mismatched_plan_is_a_typed_error() {
        let (shapes, _) = setup("Lenet-c", 256);
        let (_, other_net) = setup("AlexNet", 256);
        let plan = baselines::all_data(&other_net, 4);
        let err = simulate_step(&shapes, &plan, &ArchConfig::paper()).unwrap_err();
        assert_eq!(
            err,
            SimError::LayerCountMismatch {
                plan_layers: 8,
                network_layers: 4
            }
        );
        assert!(err.to_string().contains("weighted layer"));
    }

    #[test]
    fn graph_step_comm_matches_the_stitched_cost_model() {
        // The DAG simulator's traffic accounting — per-segment stages plus
        // the branch/join junction transfers — must equal the stitched
        // plan's analytic total.
        for (name, batch) in [("Inception-Mini", 128), ("ResNet-18", 32)] {
            let graph = graph_zoo::by_name(name).unwrap().segments(batch).unwrap();
            for plan in [
                partition_graph(&graph, 4).unwrap(),
                plan_segments(&graph, |s| baselines::all_data(s, 4)).unwrap(),
                plan_segments(&graph, |s| baselines::all_model(s, 4)).unwrap(),
            ] {
                let report = simulate_graph_step(&graph, &plan, &ArchConfig::paper()).unwrap();
                let expected = plan.total_comm_bytes();
                assert!(
                    (report.comm_bytes.value() - expected.value()).abs()
                        <= 1e-6 * expected.value().max(1.0),
                    "{name}: sim {} vs model {}",
                    report.comm_bytes,
                    expected
                );
            }
        }
    }

    #[test]
    fn graph_step_comm_matches_the_model_under_every_junction_scaling() {
        // The JunctionScaling ablation must hold on the DAG path too: when
        // the simulator prices junctions under the same interpretation the
        // plan was costed with, traffic reconciles exactly.
        let graph = graph_zoo::inception_mini().segments(128).unwrap();
        for mode in [
            JunctionScaling::Consumer,
            JunctionScaling::Producer,
            JunctionScaling::Unscaled,
        ] {
            let plan = partition_graph_with(&graph, 4, mode).unwrap();
            let cfg = ArchConfig::paper().with_junction_scaling(mode);
            let report = simulate_graph_step(&graph, &plan, &cfg).unwrap();
            let expected = plan.total_comm_bytes();
            assert!(
                (report.comm_bytes.value() - expected.value()).abs()
                    <= 1e-6 * expected.value().max(1.0),
                "{mode:?}: sim {} vs model {}",
                report.comm_bytes,
                expected
            );
        }
    }

    #[test]
    fn join_compute_strictly_increases_join_heavy_step_time() {
        // Inception-Mini's concat gathers three branch tensors; charging
        // that element-wise work must strictly lengthen the step and add
        // compute energy, while moving no bytes between groups.
        let graph = graph_zoo::inception_mini().segments(128).unwrap();
        let plan = partition_graph(&graph, 4).unwrap();
        let with = simulate_graph_step(&graph, &plan, &ArchConfig::paper()).unwrap();
        let without =
            simulate_graph_step(&graph, &plan, &ArchConfig::paper().with_join_compute(false))
                .unwrap();
        assert!(
            with.step_time > without.step_time,
            "join compute must lengthen the step: {} vs {}",
            with.step_time,
            without.step_time
        );
        assert!(with.compute_energy > without.compute_energy);
        assert_eq!(with.comm_bytes, without.comm_bytes);
        assert_eq!(with.link_energy, without.link_energy);
    }

    #[test]
    fn join_compute_labels_the_trace() {
        let graph = graph_zoo::inception_mini().segments(128).unwrap();
        let plan = partition_graph(&graph, 4).unwrap();
        let (_, trace) = simulate_graph_step_traced(&graph, &plan, &ArchConfig::paper()).unwrap();
        // The concat's consumer segment head is conv2: the gather runs
        // right before its forward pass.
        assert!(trace.contains("join conv2"), "{trace}");
    }

    #[test]
    fn graph_step_is_deterministic_and_traced_matches() {
        let graph = graph_zoo::inception_mini().segments(128).unwrap();
        let plan = partition_graph(&graph, 4).unwrap();
        let cfg = ArchConfig::paper();
        let a = simulate_graph_step(&graph, &plan, &cfg).unwrap();
        let b = simulate_graph_step(&graph, &plan, &cfg).unwrap();
        assert_eq!(a, b);
        let (traced, _) = simulate_graph_step_traced(&graph, &plan, &cfg).unwrap();
        assert_eq!(a, traced);
    }

    #[test]
    fn graph_step_trace_labels_junction_transfers() {
        let graph = graph_zoo::inception_mini().segments(128).unwrap();
        let cfg = ArchConfig::paper();

        // A dp producer feeding mp consumers pays the forward `F` branch
        // forwarding (Table 2's dp->mp transition).
        let mixed = plan_segments(&graph, |s| {
            if s.layer(0).name == "stem" {
                baselines::all_data(s, 4)
            } else {
                baselines::all_model(s, 4)
            }
        })
        .unwrap();
        let (_, trace) = simulate_graph_step_traced(&graph, &mixed, &cfg).unwrap();
        assert!(trace.contains("xfer F stem->b1x1"), "{trace}");

        // An all-mp plan pays the backward `E` gradient accumulation on
        // every junction (mp->mp costs the error tensor only).
        let mp = plan_segments(&graph, |s| baselines::all_model(s, 4)).unwrap();
        let (_, trace) = simulate_graph_step_traced(&graph, &mp, &cfg).unwrap();
        assert!(trace.contains("xfer E stem->b1x1"), "{trace}");
        assert!(trace.contains("xfer E b3x3->conv2"), "{trace}");
    }

    #[test]
    fn graph_step_mismatched_plan_is_a_typed_error() {
        let graph = graph_zoo::inception_mini().segments(128).unwrap();
        let (_, other_net) = setup("Lenet-c", 256);
        let plan = baselines::all_data(&other_net, 4);
        let err = simulate_graph_step(&graph, &plan, &ArchConfig::paper()).unwrap_err();
        assert_eq!(
            err,
            SimError::LayerCountMismatch {
                plan_layers: 4,
                network_layers: 8
            }
        );
    }

    #[test]
    fn graph_overlap_never_hurts_and_preserves_energy() {
        let graph = graph_zoo::inception_mini().segments(128).unwrap();
        let plan = partition_graph(&graph, 4).unwrap();
        let serial = simulate_graph_step(&graph, &plan, &ArchConfig::paper()).unwrap();
        let overlap =
            simulate_graph_step(&graph, &plan, &ArchConfig::paper().with_overlap(true)).unwrap();
        assert!(overlap.step_time <= serial.step_time);
        assert_eq!(overlap.comm_bytes, serial.comm_bytes);
        assert_eq!(overlap.energy, serial.energy);
    }
}
