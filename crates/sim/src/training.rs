//! Builds and runs the task graph of one synchronous training step.
//!
//! One step processes a mini-batch through forward propagation, error
//! backward propagation, gradient computation, and weight update (paper
//! §2.1, Equations 1–3), on every accelerator of the array.  The
//! parallelism plan injects communication:
//!
//! * **mp output reductions** — a layer in model parallelism produces
//!   full-width partial sums of `F_{l+1}` that the two groups of each mp
//!   level exchange before the next layer (Table 1);
//! * **junction redistributions** — adjacent layers with mismatched
//!   layouts exchange slices of `F_{l+1}` during forward and `E_{l+1}`
//!   during backward (Table 2);
//! * **dp gradient all-reduces** — a layer in data parallelism exchanges
//!   gradient partial sums before updating its replicated kernels
//!   (Table 1).
//!
//! With `overlap_comm = false` (the paper's setting) the step executes as
//! a strict sequence of stages separated by barriers; with `true`, tasks
//! are ordered only by their data dependencies, letting e.g. a gradient
//! all-reduce hide underneath the remaining backward pass.

use hypar_comm::{inter_split, intra_elems, NetworkCommTensors, Parallelism, ScaleState};
use hypar_core::HierarchicalPlan;
use hypar_models::NetworkShapes;
use hypar_tensor::{Bytes, Joules, Seconds};

use crate::des::{Engine, ResourceId, TaskId, TaskSpec};
use crate::pe::Mapping;
use crate::{ArchConfig, StepReport};

/// Simulates one training step of `shapes` under `plan` on the array
/// described by `cfg`.
///
/// # Panics
///
/// Panics if the plan's layer count does not match the network's.
///
/// # Examples
///
/// ```
/// use hypar_comm::NetworkCommTensors;
/// use hypar_core::baselines;
/// use hypar_models::{zoo, NetworkShapes};
/// use hypar_sim::{training, ArchConfig};
///
/// let shapes = NetworkShapes::infer(&zoo::sconv(), 256)?;
/// let net = NetworkCommTensors::from_shapes(&shapes);
/// let report = training::simulate_step(&shapes, &baselines::all_data(&net, 4), &ArchConfig::paper());
/// assert!(report.step_time.value() > 0.0);
/// assert_eq!(report.num_accelerators, 16);
/// # Ok::<(), hypar_models::NetworkError>(())
/// ```
#[must_use]
pub fn simulate_step(
    shapes: &NetworkShapes,
    plan: &HierarchicalPlan,
    cfg: &ArchConfig,
) -> StepReport {
    assert_eq!(
        plan.num_layers(),
        shapes.len(),
        "plan and network must have the same number of weighted layers"
    );
    Builder::new(shapes, plan, cfg, false).run().0
}

/// Like [`simulate_step`], additionally returning the executed schedule as
/// a Chrome trace (see [`crate::des::Schedule::chrome_trace`]) for
/// visualization in `chrome://tracing` or Perfetto.
///
/// # Panics
///
/// Same as [`simulate_step`].
#[must_use]
pub fn simulate_step_traced(
    shapes: &NetworkShapes,
    plan: &HierarchicalPlan,
    cfg: &ArchConfig,
) -> (StepReport, String) {
    assert_eq!(
        plan.num_layers(),
        shapes.len(),
        "plan and network must have the same number of weighted layers"
    );
    let (report, trace) = Builder::new(shapes, plan, cfg, true).run();
    (report, trace.expect("trace requested"))
}

/// Simulates one training step on a **single** accelerator (an empty
/// hierarchy) — the normalization baseline of the paper's Figure 11.
#[must_use]
pub fn simulate_single_accelerator(shapes: &NetworkShapes, cfg: &ArchConfig) -> StepReport {
    let net = NetworkCommTensors::from_shapes(shapes);
    let plan = HierarchicalPlan::from_parts(
        net.name(),
        net.layers().iter().map(|l| l.name.clone()).collect(),
        Vec::new(),
        0.0,
    );
    simulate_step(shapes, &plan, cfg)
}

/// Incrementally assembles the step's task graph.
struct Builder<'a> {
    shapes: &'a NetworkShapes,
    net: NetworkCommTensors,
    plan: &'a HierarchicalPlan,
    cfg: &'a ArchConfig,
    engine: Engine,
    accels: Vec<ResourceId>,
    /// `links[h][p]`: the pair-`p` channel at hierarchy level `h`.
    links: Vec<Vec<ResourceId>>,
    barrier_res: ResourceId,
    /// Whether to label tasks for trace export.
    trace: bool,
    /// Scale state *above* each level (index `h`), plus the leaf state at
    /// index `H`.
    scales_at: Vec<ScaleState>,
    // Accounting.
    compute_energy: Joules,
    dram_energy: Joules,
    link_energy: Joules,
    comm_bytes_per_level: Vec<f64>,
    dram_bytes: f64,
}

impl<'a> Builder<'a> {
    fn new(
        shapes: &'a NetworkShapes,
        plan: &'a HierarchicalPlan,
        cfg: &'a ArchConfig,
        trace: bool,
    ) -> Self {
        let levels = plan.num_levels();
        let n = plan.num_accelerators() as usize;
        let net = NetworkCommTensors::from_shapes(shapes);
        let mut engine = Engine::new();
        let accels = (0..n)
            .map(|i| engine.add_resource(format!("accel{i}")))
            .collect();
        let links = (0..levels)
            .map(|h| {
                (0..(1usize << h))
                    .map(|p| engine.add_resource(format!("link{h}.{p}")))
                    .collect()
            })
            .collect();
        let barrier_res = engine.add_resource("barrier");

        let mut scales_at = Vec::with_capacity(levels + 1);
        let mut s = ScaleState::identity(shapes.len());
        scales_at.push(s.clone());
        for level in plan.levels() {
            s = s.descend(level);
            scales_at.push(s.clone());
        }

        Self {
            shapes,
            net,
            plan,
            cfg,
            engine,
            accels,
            links,
            barrier_res,
            trace,
            scales_at,
            compute_energy: Joules::ZERO,
            dram_energy: Joules::ZERO,
            link_energy: Joules::ZERO,
            comm_bytes_per_level: vec![0.0; levels],
            dram_bytes: 0.0,
        }
    }

    fn num_accels(&self) -> usize {
        self.accels.len()
    }

    fn leaf(&self, l: usize) -> hypar_comm::LayerScale {
        self.scales_at[self.plan.num_levels()].layer(l)
    }

    /// A zero-duration join of `deps` on the dedicated barrier resource.
    fn barrier(&mut self, deps: &[TaskId]) -> TaskId {
        self.engine
            .add_task(TaskSpec::new(self.barrier_res, Seconds(0.0)).after_all(deps.iter().copied()))
    }

    /// The row-stationary mapping for layer `l`'s per-accelerator slice,
    /// when the detailed PE model is enabled.
    fn layer_mapping(&self, l: usize) -> Option<Mapping> {
        if !self.cfg.detailed_pe {
            return None;
        }
        let shape = self.shapes.layer(l);
        let leaf = self.leaf(l);
        let scaled = |v: u64, frac: f64| ((v as f64 * frac).ceil() as u64).max(1);
        let batch = scaled(shape.batch, leaf.batch_fraction().value());
        Some(if shape.is_conv {
            self.cfg.pe_array.map_conv(
                shape.kernel_extent,
                scaled(shape.input.channels, leaf.input_fraction().value()),
                shape.conv_out.channels,
                shape.conv_out.height,
                shape.conv_out.width,
                batch,
            )
        } else {
            self.cfg.pe_array.map_fc(
                scaled(shape.input.volume(), leaf.input_fraction().value()),
                shape.conv_out.channels,
                batch,
            )
        })
    }

    /// One compute phase replicated on every accelerator.
    fn compute_stage(
        &mut self,
        macs_total: f64,
        elementwise_total: f64,
        dram_bytes_per_accel: f64,
        mapping: Option<Mapping>,
        label: &str,
        deps: &[TaskId],
    ) -> Vec<TaskId> {
        let n = self.num_accels() as f64;
        let macs = macs_total / n;
        let elementwise = elementwise_total / n;
        let compute_time = match mapping {
            Some(m) => {
                // Row-stationary mapping: the PE grid runs at its mapped
                // utilization; element-wise work proceeds at peak.
                let pus = f64::from(self.cfg.pus_per_accelerator);
                let eff = self.cfg.pe_array.peak_macs_per_sec() * m.utilization * pus;
                macs / eff + elementwise / self.cfg.node_ops_per_sec()
            }
            None => (2.0 * macs + elementwise) / self.cfg.node_ops_per_sec(),
        };
        let duration =
            Seconds(compute_time.max(dram_bytes_per_accel / self.cfg.dram_bytes_per_sec));
        let sram_per_mac = mapping.map_or(self.cfg.energy.sram_accesses_per_mac, |m| {
            m.sram_accesses_per_mac
        });
        self.compute_energy += (self.cfg.energy.compute_with_sram(macs, sram_per_mac)
            + self.cfg.energy.elementwise(elementwise))
            * n;
        self.dram_energy += self.cfg.energy.dram(dram_bytes_per_accel) * n;
        self.dram_bytes += dram_bytes_per_accel * n;

        (0..self.num_accels())
            .map(|i| {
                let mut spec =
                    TaskSpec::new(self.accels[i], duration).after_all(deps.iter().copied());
                if self.trace {
                    spec = spec.label(label);
                }
                self.engine.add_task(spec)
            })
            .collect()
    }

    /// One transfer of `elems` tensor elements (both directions combined)
    /// on every pair-channel of level `h`.
    fn comm_stage(&mut self, h: usize, elems: f64, label: &str, deps: &[TaskId]) -> Vec<TaskId> {
        let bytes_pair = elems * f64::from(self.cfg.precision_bytes);
        let bw = self.cfg.topology.pair_bandwidth(
            h,
            self.plan.num_levels(),
            self.cfg.leaf_link_bytes_per_sec,
        );
        // Full-duplex channel: the two directions flow simultaneously.
        let duration = Seconds(bytes_pair / 2.0 / bw);
        let pairs = self.links[h].len();
        self.comm_bytes_per_level[h] += bytes_pair * pairs as f64;
        self.link_energy += self.cfg.energy.link(bytes_pair) * pairs as f64;

        (0..pairs)
            .map(|p| {
                let mut spec =
                    TaskSpec::new(self.links[h][p], duration).after_all(deps.iter().copied());
                if self.trace {
                    spec = spec.label(label);
                }
                self.engine.add_task(spec)
            })
            .collect()
    }

    /// Levels at which layer `l` is assigned `p`, deepest level first (the
    /// order partial sums combine up the tree).
    fn levels_with(&self, l: usize, p: Parallelism) -> Vec<usize> {
        (0..self.plan.num_levels())
            .rev()
            .filter(|&h| self.plan.choice(h, l) == p)
            .collect()
    }

    fn run(mut self) -> (StepReport, Option<String>) {
        let num_layers = self.shapes.len();
        let precision = f64::from(self.cfg.precision_bytes);
        let barrier_mode = !self.cfg.overlap_comm;

        // `frontier[i]`: the tasks an accelerator-`i` task must wait for in
        // overlap mode. In barrier mode a single shared frontier is used.
        let mut stage_end: Vec<TaskId> = Vec::new();
        let mut allreduce_tails: Vec<Vec<TaskId>> = vec![Vec::new(); num_layers];

        // ---------------- Forward pass ----------------
        for l in 0..num_layers {
            let layer = self.shapes.layer(l).clone();
            let leaf = self.leaf(l);
            let view = self.net.layer(l).clone();

            // Forward compute: read W and F_l slices, write F_{l+1} slice.
            let dram = (view.weight_elems * leaf.weight_scale()
                + view.input_elems * leaf.input_scale()
                + view.output_elems * leaf.output_scale())
                * precision;
            let deps = stage_end.clone();
            let mapping = self.layer_mapping(l);
            let mut tasks = self.compute_stage(
                layer.macs_forward as f64,
                layer.elementwise_ops as f64,
                dram,
                mapping,
                &format!("fwd {}", layer.name),
                &deps,
            );

            // mp output reductions, deepest level first (partial sums
            // combine pairwise up the tree, each level on its own links).
            for h in self.levels_with(l, Parallelism::Model) {
                let elems = intra_elems(Parallelism::Model, &view, self.scales_at[h].layer(l));
                let deps = vec![self.barrier(&tasks)];
                tasks = self.comm_stage(h, elems, &format!("reduce F {}", layer.name), &deps);
            }

            // Forward junction redistribution to layer l+1.
            if l + 1 < num_layers {
                let mut junction_tasks = Vec::new();
                for h in 0..self.plan.num_levels() {
                    let (f_elems, _) = inter_split(
                        self.plan.choice(h, l),
                        self.plan.choice(h, l + 1),
                        view.junction_elems,
                        self.scales_at[h].junction_scale(l),
                    );
                    if f_elems > 0.0 {
                        let deps = vec![self.barrier(&tasks)];
                        let label = format!("xfer F {}", layer.name);
                        junction_tasks.extend(self.comm_stage(h, f_elems, &label, &deps));
                    }
                }
                if !junction_tasks.is_empty() {
                    tasks = junction_tasks;
                }
            }

            stage_end = vec![self.barrier(&tasks)];
        }

        // ---------------- Backward + gradient ----------------
        // The loss turnaround: backward starts once forward completes.
        let mut bwd_frontier = stage_end.clone();

        for l in (0..num_layers).rev() {
            let layer = self.shapes.layer(l).clone();
            let leaf = self.leaf(l);
            let view = self.net.layer(l).clone();

            // Backward junction: E_{l+1} redistribution from layer l+1.
            if l + 1 < num_layers {
                let mut junction_tasks = Vec::new();
                for h in 0..self.plan.num_levels() {
                    let (_, e_elems) = inter_split(
                        self.plan.choice(h, l),
                        self.plan.choice(h, l + 1),
                        view.junction_elems,
                        self.scales_at[h].junction_scale(l),
                    );
                    if e_elems > 0.0 {
                        let deps = vec![self.barrier(&bwd_frontier)];
                        let label = format!("xfer E {}", layer.name);
                        junction_tasks.extend(self.comm_stage(h, e_elems, &label, &deps));
                    }
                }
                if !junction_tasks.is_empty() {
                    bwd_frontier = vec![self.barrier(&junction_tasks)];
                }
            }

            // Error backward (not for the first layer) and gradient
            // computation; both need E_{l+1} (and locally retained F_l/W_l).
            let mut phase_tasks = Vec::new();
            let mapping = self.layer_mapping(l);
            if l > 0 {
                let dram = (view.weight_elems * leaf.weight_scale()
                    + view.output_elems * leaf.output_scale()
                    + view.input_elems * leaf.input_scale())
                    * precision;
                let deps = bwd_frontier.clone();
                phase_tasks.extend(self.compute_stage(
                    layer.macs_backward() as f64,
                    0.0,
                    dram,
                    mapping,
                    &format!("bwd {}", layer.name),
                    &deps,
                ));
            }
            let dram = (view.input_elems * leaf.input_scale()
                + view.output_elems * leaf.output_scale()
                + view.weight_elems * leaf.weight_scale())
                * precision;
            let deps = bwd_frontier.clone();
            let grad_tasks = self.compute_stage(
                layer.macs_gradient() as f64,
                0.0,
                dram,
                mapping,
                &format!("grad {}", layer.name),
                &deps,
            );
            phase_tasks.extend(grad_tasks.iter().copied());

            // In barrier mode everything downstream waits here; in overlap
            // mode only the all-reduce chain depends on the gradients while
            // the backward error continues independently.
            let grad_barrier = self.barrier(&grad_tasks);
            let phase_barrier = self.barrier(&phase_tasks);

            // dp gradient all-reduce, deepest level first.
            let mut reduce_tail = vec![grad_barrier];
            for h in self.levels_with(l, Parallelism::Data) {
                let elems = intra_elems(Parallelism::Data, &view, self.scales_at[h].layer(l));
                let deps = reduce_tail.clone();
                let label = format!("allreduce dW {}", layer.name);
                let tasks = self.comm_stage(h, elems, &label, &deps);
                reduce_tail = vec![self.barrier(&tasks)];
            }

            // Weight update: read ΔW, write W (element-wise add).
            let w_slice = view.weight_elems * leaf.weight_scale();
            let update_deps = if barrier_mode {
                // Serialize: update waits for this layer's comm and compute.
                vec![self.barrier(&[reduce_tail[0], phase_barrier])]
            } else {
                reduce_tail.clone()
            };
            let update_tasks = self.compute_stage(
                0.0,
                w_slice,
                2.0 * w_slice * precision,
                None,
                &format!("update {}", layer.name),
                &update_deps,
            );
            allreduce_tails[l] = update_tasks;

            // Next (shallower) layer's backward frontier.
            bwd_frontier = if barrier_mode {
                vec![self.barrier(&[reduce_tail[0], phase_barrier])]
            } else {
                vec![phase_barrier]
            };
        }

        // The step completes when every update (and the final backward
        // frontier) has finished.
        let mut finale: Vec<TaskId> = bwd_frontier;
        for tails in &allreduce_tails {
            finale.extend(tails.iter().copied());
        }
        let _ = self.barrier(&finale);

        self.finish()
    }

    fn finish(self) -> (StepReport, Option<String>) {
        let Self {
            shapes,
            net,
            plan,
            cfg,
            engine,
            accels,
            links,
            trace,
            compute_energy,
            dram_energy,
            link_energy,
            comm_bytes_per_level,
            dram_bytes,
            scales_at,
            ..
        } = self;

        let schedule = engine.run();
        let chrome_trace = trace.then(|| schedule.chrome_trace());
        let compute_busy = schedule.busy_time(accels[0]);
        let link_busy = links
            .iter()
            .flatten()
            .map(|&r| schedule.busy_time(r))
            .fold(Seconds::ZERO, |a, b| if b > a { b } else { a });

        // Per-accelerator resident footprint: weight, input and output
        // slices of every layer (activations are retained for the backward
        // pass).
        let leaf_state = &scales_at[plan.num_levels()];
        let precision = f64::from(cfg.precision_bytes);
        let footprint: f64 = net
            .layers()
            .iter()
            .enumerate()
            .map(|(l, v)| {
                let s = leaf_state.layer(l);
                (v.weight_elems * s.weight_scale()
                    + v.input_elems * s.input_scale()
                    + v.output_elems * s.output_scale())
                    * precision
            })
            .sum();
        let _ = shapes;

        let comm_total: f64 = comm_bytes_per_level.iter().sum();
        let report = StepReport {
            step_time: schedule.makespan(),
            energy: compute_energy + dram_energy + link_energy,
            compute_energy,
            dram_energy,
            link_energy,
            comm_bytes: Bytes(comm_total),
            comm_bytes_per_level: comm_bytes_per_level.into_iter().map(Bytes).collect(),
            dram_bytes: Bytes(dram_bytes),
            compute_busy,
            link_busy,
            dram_footprint_bytes: Bytes(footprint),
            num_accelerators: plan.num_accelerators(),
        };
        (report, chrome_trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypar_core::{baselines, hierarchical};
    use hypar_models::zoo;

    fn setup(name: &str, batch: u64) -> (NetworkShapes, NetworkCommTensors) {
        let shapes = NetworkShapes::infer(&zoo::by_name(name).unwrap(), batch).unwrap();
        let net = NetworkCommTensors::from_shapes(&shapes);
        (shapes, net)
    }

    #[test]
    fn single_accelerator_has_no_communication() {
        let (shapes, _) = setup("Lenet-c", 256);
        let report = simulate_single_accelerator(&shapes, &ArchConfig::paper());
        assert_eq!(report.num_accelerators, 1);
        assert!(report.comm_bytes.is_zero());
        assert!(report.link_energy.is_zero());
        assert!(report.step_time.value() > 0.0);
    }

    #[test]
    fn comm_bytes_match_the_cost_model() {
        // The simulator's traffic accounting must equal evaluate_plan's.
        let (shapes, net) = setup("Lenet-c", 256);
        for plan in [
            hierarchical::partition(&net, 4),
            baselines::all_data(&net, 4),
            baselines::all_model(&net, 4),
            baselines::one_weird_trick(&net, 4),
        ] {
            let report = simulate_step(&shapes, &plan, &ArchConfig::paper());
            let expected = plan.total_comm_bytes();
            assert!(
                (report.comm_bytes.value() - expected.value()).abs()
                    <= 1e-6 * expected.value().max(1.0),
                "sim {} vs model {}",
                report.comm_bytes,
                expected
            );
        }
    }

    #[test]
    fn hypar_is_faster_than_data_parallelism_on_lenet() {
        let (shapes, net) = setup("Lenet-c", 256);
        let cfg = ArchConfig::paper();
        let hypar = simulate_step(&shapes, &hierarchical::partition(&net, 4), &cfg);
        let dp = simulate_step(&shapes, &baselines::all_data(&net, 4), &cfg);
        let mp = simulate_step(&shapes, &baselines::all_model(&net, 4), &cfg);
        assert!(hypar.performance_gain_over(&dp) > 1.0);
        assert!(
            dp.performance_gain_over(&mp) > 1.0,
            "mp should be worst for Lenet-c"
        );
    }

    #[test]
    fn sixteen_accelerators_beat_one_for_vgg() {
        let (shapes, net) = setup("VGG-A", 256);
        let cfg = ArchConfig::paper();
        let one = simulate_single_accelerator(&shapes, &cfg);
        let hypar = simulate_step(&shapes, &hierarchical::partition(&net, 4), &cfg);
        let gain = hypar.performance_gain_over(&one);
        assert!(
            gain > 4.0,
            "16 accelerators should give a solid speedup, got {gain:.2}"
        );
        assert!(
            gain <= 16.0,
            "speedup cannot exceed the accelerator count, got {gain:.2}"
        );
    }

    #[test]
    fn overlap_never_hurts() {
        let (shapes, net) = setup("AlexNet", 256);
        let plan = baselines::all_data(&net, 4);
        let serial = simulate_step(&shapes, &plan, &ArchConfig::paper());
        let overlap = simulate_step(&shapes, &plan, &ArchConfig::paper().with_overlap(true));
        assert!(overlap.step_time <= serial.step_time);
        // Traffic and energy are schedule-independent.
        assert_eq!(overlap.comm_bytes, serial.comm_bytes);
        assert_eq!(overlap.energy, serial.energy);
    }

    #[test]
    fn torus_is_never_faster_than_htree() {
        let (shapes, net) = setup("Cifar-c", 256);
        let plan = hierarchical::partition(&net, 4);
        let htree = simulate_step(&shapes, &plan, &ArchConfig::paper());
        let torus = simulate_step(
            &shapes,
            &plan,
            &ArchConfig::paper().with_topology(crate::Topology::Torus),
        );
        assert!(torus.step_time >= htree.step_time);
        assert_eq!(torus.comm_bytes, htree.comm_bytes);
    }

    #[test]
    fn energy_components_sum() {
        let (shapes, net) = setup("Cifar-c", 256);
        let report = simulate_step(
            &shapes,
            &hierarchical::partition(&net, 4),
            &ArchConfig::paper(),
        );
        let sum = report.compute_energy + report.dram_energy + report.link_energy;
        assert!((report.energy.value() - sum.value()).abs() < 1e-12);
        assert!(report.compute_energy.value() > 0.0);
        assert!(report.dram_energy.value() > 0.0);
        assert!(report.link_energy.value() > 0.0);
    }

    #[test]
    fn determinism() {
        let (shapes, net) = setup("AlexNet", 256);
        let plan = hierarchical::partition(&net, 4);
        let a = simulate_step(&shapes, &plan, &ArchConfig::paper());
        let b = simulate_step(&shapes, &plan, &ArchConfig::paper());
        assert_eq!(a, b);
    }

    #[test]
    fn traced_run_matches_untraced_and_labels_phases() {
        let (shapes, net) = setup("Lenet-c", 256);
        let plan = hierarchical::partition(&net, 4);
        let cfg = ArchConfig::paper();
        let plain = simulate_step(&shapes, &plan, &cfg);
        let (traced, trace) = simulate_step_traced(&shapes, &plan, &cfg);
        assert_eq!(plain, traced);
        for needle in [
            "fwd conv1",
            "grad fc2",
            "allreduce dW conv1",
            "reduce F fc1",
            "accel0",
        ] {
            assert!(trace.contains(needle), "trace missing `{needle}`");
        }
        // Valid-enough JSON: balanced brackets, one event per line.
        assert!(trace.trim_start().starts_with('['));
        assert!(trace.trim_end().ends_with(']'));
    }

    #[test]
    #[should_panic(expected = "same number of weighted layers")]
    fn mismatched_plan_panics() {
        let (shapes, _) = setup("Lenet-c", 256);
        let (_, other_net) = setup("AlexNet", 256);
        let plan = baselines::all_data(&other_net, 4);
        let _ = simulate_step(&shapes, &plan, &ArchConfig::paper());
    }
}
