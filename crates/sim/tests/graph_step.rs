//! Properties of the whole-DAG step simulation.
//!
//! The anchor mirrors PR 2's `linearize()` property one level up the
//! stack: a randomly generated **branch-free** DAG decomposes into one
//! segment with no edges, so [`hypar_sim::training::simulate_graph_step`]
//! must produce a [`hypar_sim::StepReport`] **bit-identical** to
//! [`hypar_sim::training::simulate_step`] on the linearized chain — same
//! task graph, same schedule, same energy, to the last float.  On genuinely
//! branchy networks the suite checks the junction accounting against the
//! stitched analytic model and that `overlap_comm` lets independent
//! branches overlap.

use hypar_comm::NetworkCommTensors;
use hypar_core::{baselines, hierarchical};
use hypar_graph::{partition_graph, plan_segments, zoo, GraphBuilder, INPUT};
use hypar_models::{ConvSpec, Layer, Network, NetworkShapes, PoolSpec};
use hypar_sim::{training, ArchConfig};
use hypar_tensor::FeatureDims;
use proptest::prelude::*;

/// One randomly drawn chain: an input shape plus layer descriptors
/// (mirrors `crates/graph/tests/graph_properties.rs`).
#[derive(Clone, Debug)]
struct ChainSpec {
    input: FeatureDims,
    /// `(out_channels, kernel, pool)` per convolution.
    convs: Vec<(u64, u64, bool)>,
    /// `out_features` per fully-connected layer.
    fcs: Vec<u64>,
}

impl ChainSpec {
    /// The layers, constructed identically for both IRs.
    fn layers(&self) -> Vec<Layer> {
        let mut hw = self.input.height;
        let mut layers = Vec::new();
        for (i, &(out_ch, kernel, pool)) in self.convs.iter().enumerate() {
            let mut layer = Layer::conv(format!("conv{i}"), ConvSpec::same(out_ch, kernel));
            if pool && hw >= 4 {
                layer = layer.with_pool(PoolSpec::max2());
                hw /= 2;
            }
            layers.push(layer);
        }
        for (i, &out) in self.fcs.iter().enumerate() {
            layers.push(Layer::fully_connected(format!("fc{i}"), out));
        }
        layers
    }

    /// The chain built directly through the chain IR.
    fn chain(&self) -> Network {
        let mut b = Network::builder("prop", self.input);
        for layer in self.layers() {
            b.layer(layer);
        }
        b.build().expect("generated chains are valid")
    }

    /// The same chain built as a DAG — with the nodes inserted in
    /// *reverse* order, so canonicalization is exercised too.
    fn dag(&self) -> hypar_graph::DagNetwork {
        let layers = self.layers();
        let mut g = GraphBuilder::new("prop", self.input);
        for (i, layer) in layers.iter().enumerate().rev() {
            let from = if i == 0 {
                INPUT.to_owned()
            } else {
                layers[i - 1].name().to_owned()
            };
            g.layer(layer.clone(), from);
        }
        g.build().expect("generated DAGs are valid")
    }
}

fn arb_chain() -> impl Strategy<Value = ChainSpec> {
    (
        proptest::collection::vec(
            (
                1u64..64,
                prop_oneof![Just(1u64), Just(3), Just(5)],
                any::<bool>(),
            ),
            0..5,
        ),
        proptest::collection::vec(1u64..300, 1..4),
        (1u64..8, 8u64..64),
    )
        .prop_map(|(convs, fcs, (in_ch, in_hw))| ChainSpec {
            input: FeatureDims::new(in_ch, in_hw, in_hw),
            convs,
            fcs,
        })
}

proptest! {
    /// A chain-shaped DAG's step report is bit-identical to the
    /// linearized chain's, across hierarchy depths and both scheduling
    /// modes — the simulator counterpart of the `linearize()` planning
    /// property.
    #[test]
    fn chain_dag_step_report_is_bit_identical(
        spec in arb_chain(),
        levels in 0usize..5,
        overlap in any::<bool>(),
    ) {
        let batch = 32;
        let cfg = if overlap {
            ArchConfig::paper().with_overlap(true)
        } else {
            ArchConfig::paper()
        };

        let shapes = NetworkShapes::infer(&spec.chain(), batch).unwrap();
        let tensors = NetworkCommTensors::from_shapes(&shapes);
        let chain_plan = hierarchical::partition(&tensors, levels);
        let chain_report = training::simulate_step(&shapes, &chain_plan, &cfg).unwrap();

        let graph = spec.dag().segments(batch).unwrap();
        prop_assert_eq!(graph.num_segments(), 1);
        let dag_plan = partition_graph(&graph, levels).unwrap();
        let dag_report = training::simulate_graph_step(&graph, &dag_plan, &cfg).unwrap();

        prop_assert_eq!(chain_report, dag_report);
    }

    /// Traffic and energy are schedule-independent on branchy DAGs too,
    /// and overlap never hurts.
    #[test]
    fn branchy_overlap_preserves_traffic_and_never_hurts(levels in 1usize..5) {
        let graph = zoo::inception_mini().segments(64).unwrap();
        let plan = partition_graph(&graph, levels).unwrap();
        let serial = training::simulate_graph_step(&graph, &plan, &ArchConfig::paper()).unwrap();
        let overlap = training::simulate_graph_step(
            &graph,
            &plan,
            &ArchConfig::paper().with_overlap(true),
        )
        .unwrap();
        prop_assert!(overlap.step_time <= serial.step_time);
        prop_assert_eq!(overlap.comm_bytes, serial.comm_bytes);
        prop_assert_eq!(overlap.energy, serial.energy);
    }
}

#[test]
fn branch_overlap_shortens_the_inception_step() {
    // Inception-Mini's three parallel branches compute on the same
    // accelerators, but their junction transfers and gradient all-reduces
    // hide under other branches' work once `overlap_comm` lifts the phase
    // barriers — the simulated step must get strictly faster.
    let graph = zoo::inception_mini().segments(128).unwrap();
    let plan = partition_graph(&graph, 4).unwrap();
    let cfg = ArchConfig::paper();
    let serial = training::simulate_graph_step(&graph, &plan, &cfg).unwrap();
    let overlap =
        training::simulate_graph_step(&graph, &plan, &cfg.clone().with_overlap(true)).unwrap();
    assert!(
        overlap.step_time < serial.step_time,
        "overlap {} should beat serial {}",
        overlap.step_time,
        serial.step_time
    );
    // The gain is scheduling only: identical traffic and energy.
    assert_eq!(overlap.comm_bytes, serial.comm_bytes);
    assert_eq!(overlap.energy, serial.energy);
}

#[test]
fn resnet18_hybrid_step_beats_data_parallelism() {
    // Figures 6-8-style end-to-end validation on the branchy zoo: the
    // hybrid plan's simulated step time and energy must not lose to the
    // uniform dp baseline under the identical simulator.
    let graph = zoo::resnet18().segments(64).unwrap();
    let cfg = ArchConfig::paper();
    let hybrid =
        training::simulate_graph_step(&graph, &partition_graph(&graph, 4).unwrap(), &cfg).unwrap();
    let dp_plan = plan_segments(&graph, |s| baselines::all_data(s, 4)).unwrap();
    let dp = training::simulate_graph_step(&graph, &dp_plan, &cfg).unwrap();
    assert!(
        hybrid.performance_gain_over(&dp) >= 1.0,
        "hybrid {} vs dp {}",
        hybrid.step_time,
        dp.step_time
    );
    assert!(
        hybrid.energy_efficiency_over(&dp) >= 1.0,
        "hybrid {} vs dp {}",
        hybrid.energy,
        dp.energy
    );
}

#[test]
fn zero_levels_graph_step_has_no_communication() {
    let graph = zoo::resnet18().segments(16).unwrap();
    let plan = partition_graph(&graph, 0).unwrap();
    let report = training::simulate_graph_step(&graph, &plan, &ArchConfig::paper()).unwrap();
    assert_eq!(report.num_accelerators, 1);
    assert!(report.comm_bytes.is_zero());
    assert!(report.link_energy.is_zero());
    assert!(report.step_time.value() > 0.0);
}
