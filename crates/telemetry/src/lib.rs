//! Dependency-light telemetry for the HyPar engine: metrics and traces.
//!
//! The planning service's observability layer, in two halves:
//!
//! * [`metrics`] — process-lifetime aggregates: atomic [`Counter`]s and
//!   [`Gauge`]s plus log2-bucketed latency [`Histogram`]s with
//!   p50/p90/p99 [`HistogramSnapshot`] summaries, organized in a named
//!   [`Registry`] that snapshots to one JSON object (the service's
//!   `{"stats": true}` admin reply).
//! * [`trace`] — per-request structure: a [`SpanRecorder`] times named
//!   units of work into a [`Span`] tree (cache lookup, per-segment
//!   planning, stitch, refine, simulate …) that a traced `PlanResponse`
//!   carries back to the caller.
//! * [`statehash`] — canonical state digests: the [`StateHasher`]
//!   primitive and the [`StateHash`] trait that plan/report-producing
//!   crates implement so every response carries a bit-exact,
//!   order-canonical `state_hash` the golden manifests and the
//!   record/replay harness can pin.
//!
//! Everything is `std`-only (atomics, one mutex around registration) so
//! the instruments are cheap enough to leave on for every request: a
//! recorded observation is a handful of relaxed atomic adds, a span is
//! two `Instant` reads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod metrics;
pub mod statehash;
pub mod trace;

pub use metrics::{
    percentile, Counter, Gauge, Histogram, HistogramSnapshot, Registry, RegistrySnapshot,
};
pub use statehash::{hash_hex, StateHash, StateHasher};
pub use trace::{duration_ns_since, Span, SpanRecorder};
