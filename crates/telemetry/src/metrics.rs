//! Atomic metric instruments and the named registry that snapshots them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use serde::{Deserialize, Serialize, Value};

/// A monotone event counter.
///
/// All operations are relaxed atomics: counters are statistics, not
/// synchronization, and a snapshot taken mid-burst is allowed to sit
/// anywhere between the burst's start and end values.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (e.g. in-flight requests).  Unlike a
/// [`Counter`] it moves both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Raises the level by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Lowers the level by `n`, saturating at zero (a release racing a
    /// snapshot must not wrap to `u64::MAX`).
    pub fn sub(&self, n: u64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(n);
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// The current level.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count of a [`Histogram`]: bucket 0 holds the value 0 and bucket
/// `b ≥ 1` holds values in `[2^(b-1), 2^b)`, so 65 buckets cover all of
/// `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of non-negative values (the engine records
/// latencies in nanoseconds).
///
/// Recording is one relaxed `fetch_add` per observation plus min/max
/// maintenance — cheap enough for every request.  Quantiles are estimated
/// from the bucket boundaries ([`HistogramSnapshot`] documents the
/// error), which is the usual trade for a fixed-size lock-free histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket a value falls into (see [`HISTOGRAM_BUCKETS`]).
fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The largest value bucket `b` holds — the conservative (upper-bound)
/// quantile estimate for observations in it.
fn bucket_upper_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time summary.  Concurrent recording keeps every bucket
    /// internally coherent; across fields the snapshot may straddle an
    /// in-flight observation (count and sum are read independently),
    /// which is fine for statistics.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let sum = self.sum.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Nearest-rank over the bucket counts: the smallest bucket
            // whose cumulative count reaches ceil(q * count).
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (b, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return bucket_upper_bound(b);
                }
            }
            bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
        };
        HistogramSnapshot {
            count,
            sum,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
///
/// `min`/`max` are exact; `p50`/`p90`/`p99` are upper bounds of the log2
/// bucket containing the quantile (at most 2x the true value).  All
/// values are in the unit the histogram was recorded in.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// `sum / count` (0 when empty).
    pub mean: f64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Median estimate (log2-bucket upper bound).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

/// A named set of instruments, snapshotted as one JSON object.
///
/// Handles are `Arc`s: callers register once (e.g. at engine
/// construction) and bump the shared instrument lock-free afterwards —
/// the registry mutex guards only registration and snapshotting.  The
/// lock recovers from poisoning the same way the engine's plan cache
/// does: registration keeps the vectors coherent at every step, so a
/// panicking holder costs nothing.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Vec<(String, Arc<Counter>)>,
    gauges: Vec<(String, Arc<Gauge>)>,
    histograms: Vec<(String, Arc<Histogram>)>,
}

fn get_or_insert<T: Default>(list: &mut Vec<(String, Arc<T>)>, name: &str) -> Arc<T> {
    if let Some((_, existing)) = list.iter().find(|(n, _)| n == name) {
        return Arc::clone(existing);
    }
    let instrument = Arc::new(T::default());
    list.push((name.to_owned(), Arc::clone(&instrument)));
    instrument
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The counter registered under `name`, creating it on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&mut self.lock().counters, name)
    }

    /// The gauge registered under `name`, creating it on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&mut self.lock().gauges, name)
    }

    /// The histogram registered under `name`, creating it on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&mut self.lock().histograms, name)
    }

    /// A point-in-time snapshot of every registered instrument, **sorted
    /// by name** within each section.  Registration order is a runtime
    /// accident (it can differ between builds as call sites move);
    /// sorting makes the snapshot — and therefore the `{"stats": true}`
    /// service reply — canonical, so stats JSON diffs cleanly across
    /// runs and commits.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.lock();
        let mut snapshot = RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        };
        snapshot.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snapshot.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snapshot.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snapshot
    }
}

/// A point-in-time copy of a [`Registry`]'s instruments.
///
/// Serializes as `{"counters": {..}, "gauges": {..}, "histograms": {..}}`
/// with instrument names as keys.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, summary)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// The value of the counter named `name`, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The value of the gauge named `name`, if registered.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The summary of the histogram named `name`, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

impl Serialize for RegistrySnapshot {
    fn to_value(&self) -> Value {
        let map = |pairs: Vec<(String, Value)>| Value::Object(pairs);
        Value::Object(vec![
            (
                "counters".to_owned(),
                map(self
                    .counters
                    .iter()
                    .map(|(n, v)| (n.clone(), Value::U64(*v)))
                    .collect()),
            ),
            (
                "gauges".to_owned(),
                map(self
                    .gauges
                    .iter()
                    .map(|(n, v)| (n.clone(), Value::U64(*v)))
                    .collect()),
            ),
            (
                "histograms".to_owned(),
                map(self
                    .histograms
                    .iter()
                    .map(|(n, h)| (n.clone(), h.to_value()))
                    .collect()),
            ),
        ])
    }
}

impl Deserialize for RegistrySnapshot {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        let section = |key: &str| -> Result<&[(String, Value)], serde::DeError> {
            v.get(key)
                .and_then(Value::as_object)
                .ok_or_else(|| serde::DeError::missing_field(key, "RegistrySnapshot"))
        };
        let numbers = |key: &str| -> Result<Vec<(String, u64)>, serde::DeError> {
            section(key)?
                .iter()
                .map(|(n, val)| {
                    val.as_u64()
                        .map(|u| (n.clone(), u))
                        .ok_or_else(|| serde::DeError::expected("unsigned integer", val))
                })
                .collect()
        };
        Ok(RegistrySnapshot {
            counters: numbers("counters")?,
            gauges: numbers("gauges")?,
            histograms: section("histograms")?
                .iter()
                .map(|(n, val)| HistogramSnapshot::from_value(val).map(|h| (n.clone(), h)))
                .collect::<Result<_, _>>()?,
        })
    }
}

/// Exact nearest-rank percentile over an **ascending-sorted** slice
/// (`q` in `[0, 1]`); 0 for an empty slice.  The scenario runner uses
/// this where it holds every sample, as opposed to the bucket estimate a
/// [`Histogram`] trades exactness for.
#[must_use]
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 2);
        g.sub(10); // saturates, never wraps
        assert_eq!(g.get(), 0);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_bound_the_true_values() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 500_500);
        // The log2 estimate never under-reports and is at most one
        // bucket (2x) above the true quantile.
        assert!(s.p50 >= 500 && s.p50 < 1024, "p50 {}", s.p50);
        assert!(s.p90 >= 900 && s.p90 < 2048, "p90 {}", s.p90);
        assert!(s.p99 >= 990 && s.p99 < 2048, "p99 {}", s.p99);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn registry_returns_shared_handles_and_snapshots() {
        let r = Registry::new();
        let a = r.counter("requests");
        let b = r.counter("requests");
        a.inc();
        b.inc();
        r.gauge("inflight").set(3);
        r.histogram("latency").record(100);
        let snap = r.snapshot();
        assert_eq!(snap.counter("requests"), Some(2));
        assert_eq!(snap.gauge("inflight"), Some(3));
        assert_eq!(snap.histogram("latency").unwrap().count, 1);
        assert_eq!(snap.counter("nope"), None);
    }

    #[test]
    fn snapshots_are_key_sorted_regardless_of_registration_order() {
        let forward = Registry::new();
        forward.counter("alpha").add(1);
        forward.counter("beta").add(2);
        forward.histogram("h_late").record(9);
        forward.histogram("h_early").record(9);

        let backward = Registry::new();
        backward.histogram("h_early").record(9);
        backward.histogram("h_late").record(9);
        backward.counter("beta").add(2);
        backward.counter("alpha").add(1);

        let a = forward.snapshot();
        let b = backward.snapshot();
        assert_eq!(a, b, "registration order must not leak into snapshots");
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "serialized stats must be byte-identical across runs"
        );
        assert_eq!(a.counters[0].0, "alpha");
        assert_eq!(a.histograms[0].0, "h_early");
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = Registry::new();
        r.counter("a").add(7);
        r.histogram("h").record(42);
        let snap = r.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn concurrent_recording_is_not_torn() {
        let h = std::sync::Arc::new(Histogram::new());
        let c = std::sync::Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let h = std::sync::Arc::clone(&h);
                let c = std::sync::Arc::clone(&c);
                scope.spawn(move || {
                    for v in 0..1000 {
                        h.record(v);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.snapshot().count, 8000);
    }

    #[test]
    fn exact_percentile_is_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.90), 90.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
