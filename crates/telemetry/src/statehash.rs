//! Canonical state hashing: the determinism net under the engine.
//!
//! A [`StateHasher`] folds primitive fields into a 64-bit FNV-1a digest
//! with **bit-exact float encoding** (`f64::to_bits`, so `-0.0 != 0.0`
//! and NaN payloads are distinguished — if two builds disagree in the
//! last ulp, the hash catches it).  Types that participate in the
//! engine's canonical state implement [`StateHash`] and fold themselves
//! field by field; the engine combines the per-crate digests into the
//! `state_hash` attached to every `PlanResponse`, which the golden
//! manifests and the record/replay harness pin across runs and commits.
//!
//! Hashing is **order-dependent by design** (it is a transcript of the
//! canonical serialization); order-*independence* for DAG inputs comes
//! from upstream canonicalization — a `DagNetwork` orders its nodes
//! topologically and deterministically before anything is hashed, so
//! node-insertion order never reaches a hasher.
//!
//! Every implementation starts with a short domain tag (`"plan/v1"`,
//! `"report/v1"`, …) so digests of different types never collide by
//! field coincidence, and strings are length-prefixed so field
//! boundaries cannot alias (`("ab", "c")` never hashes like
//! `("a", "bc")`).

/// Incremental 64-bit FNV-1a hasher over primitive fields.
///
/// The same construction as the engine's cache fingerprint, exposed as a
/// public building block so every crate folds state the same way.
///
/// # Examples
///
/// ```
/// use hypar_telemetry::statehash::StateHasher;
///
/// let mut h = StateHasher::new();
/// h.write_str("plan/v1");
/// h.write_u64(4);
/// h.write_f64(1.5);
/// let digest = h.finish();
/// assert_eq!(digest, {
///     let mut again = StateHasher::new();
///     again.write_str("plan/v1");
///     again.write_u64(4);
///     again.write_f64(1.5);
///     again.finish()
/// });
/// ```
#[derive(Clone, Debug)]
pub struct StateHasher(u64);

impl Default for StateHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StateHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        StateHasher(Self::OFFSET)
    }

    /// Folds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds an unsigned integer (little-endian, fixed width).
    pub fn write_u64(&mut self, n: u64) {
        self.write_bytes(&n.to_le_bytes());
    }

    /// Folds a float **bit-exactly** via [`f64::to_bits`]: distinct bit
    /// patterns (including `-0.0` vs `0.0` and NaN payloads) hash
    /// differently, which is the whole point of a drift detector.
    pub fn write_f64(&mut self, n: f64) {
        self.write_bytes(&n.to_bits().to_le_bytes());
    }

    /// Folds a boolean as one byte.
    pub fn write_bool(&mut self, b: bool) {
        self.write_bytes(&[u8::from(b)]);
    }

    /// Folds a length-prefixed string, so adjacent fields cannot alias.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The digest accumulated so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Types with a canonical state digest.
///
/// Implementations fold every observable field (bit-exact floats, length
/// prefixed strings, a leading domain tag) into the hasher; two values
/// hash equal exactly when a caller could not tell them apart through
/// the wire surface.  Timing, cache flags, and other per-request
/// incidentals are deliberately **not** part of any state hash.
pub trait StateHash {
    /// Folds `self` into `h`.
    fn state_hash_into(&self, h: &mut StateHasher);

    /// The standalone digest of `self`.
    #[must_use]
    fn state_hash(&self) -> u64 {
        let mut h = StateHasher::new();
        self.state_hash_into(&mut h);
        h.finish()
    }

    /// The digest rendered the way it ships on the wire: 16 lowercase
    /// hex digits.
    #[must_use]
    fn state_hash_hex(&self) -> String {
        hash_hex(self.state_hash())
    }
}

/// Renders a digest as 16 lowercase hex digits (the wire spelling used
/// by `PlanResponse::state_hash` and `scenarios/golden.json`).
#[must_use]
pub fn hash_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Pair(f64, f64);

    impl StateHash for Pair {
        fn state_hash_into(&self, h: &mut StateHasher) {
            h.write_str("pair/v1");
            h.write_f64(self.0);
            h.write_f64(self.1);
        }
    }

    #[test]
    fn deterministic_and_sensitive() {
        assert_eq!(Pair(1.0, 2.0).state_hash(), Pair(1.0, 2.0).state_hash());
        assert_ne!(Pair(1.0, 2.0).state_hash(), Pair(2.0, 1.0).state_hash());
    }

    #[test]
    fn floats_hash_bit_exactly() {
        let base = Pair(1.0, 2.0).state_hash();
        let ulp = Pair(1.0, f64::from_bits(2.0f64.to_bits() + 1)).state_hash();
        assert_ne!(base, ulp, "a one-ulp cost drift must change the hash");
        assert_ne!(
            Pair(0.0, 0.0).state_hash(),
            Pair(-0.0, 0.0).state_hash(),
            "signed zero is a sign-bit drift"
        );
    }

    #[test]
    fn strings_are_length_prefixed() {
        let ab_c = {
            let mut h = StateHasher::new();
            h.write_str("ab");
            h.write_str("c");
            h.finish()
        };
        let a_bc = {
            let mut h = StateHasher::new();
            h.write_str("a");
            h.write_str("bc");
            h.finish()
        };
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn hex_is_16_lowercase_digits() {
        assert_eq!(hash_hex(0xdead_beef), "00000000deadbeef");
        assert_eq!(hash_hex(u64::MAX), "ffffffffffffffff");
    }
}
