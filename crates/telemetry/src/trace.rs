//! Structured span trees: per-request timing breakdowns.
//!
//! A [`SpanRecorder`] wraps a unit of work, times named sub-units as
//! child [`Span`]s (nested arbitrarily via [`SpanRecorder::time_in`]),
//! and attaches counters (sweep counts, candidate counts) to the span
//! they describe.  [`SpanRecorder::finish`] freezes the recorder into
//! the immutable [`Span`] tree that ships in a response.

use std::time::Instant;

use serde::{DeError, Deserialize, Serialize, Value};

/// One timed node of a trace: a name, a wall-clock duration, optional
/// counters, and child spans in execution order.
///
/// Serializes as `{"name": .., "duration_ns": .., "counters": {..},
/// "children": [..]}`, omitting empty counters/children.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// What was timed (e.g. `"stitch"`, `"refine"`).
    pub name: String,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Named quantities attached to this span (e.g. `sweeps`, `flips`).
    pub counters: Vec<(String, u64)>,
    /// Timed sub-units, in execution order.
    pub children: Vec<Span>,
}

impl Span {
    /// The counter named `name` on this span, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Depth-first search for the first span named `name` (including
    /// `self`).
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&Span> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Total number of spans in the tree (including `self`).
    #[must_use]
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(Span::len).sum::<usize>()
    }

    /// Always false: a span tree contains at least its root.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Serialize for Span {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("name".to_owned(), Value::String(self.name.clone())),
            ("duration_ns".to_owned(), Value::U64(self.duration_ns)),
        ];
        if !self.counters.is_empty() {
            fields.push((
                "counters".to_owned(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Value::U64(*v)))
                        .collect(),
                ),
            ));
        }
        if !self.children.is_empty() {
            fields.push((
                "children".to_owned(),
                Value::Array(self.children.iter().map(Serialize::to_value).collect()),
            ));
        }
        Value::Object(fields)
    }
}

impl Deserialize for Span {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| DeError::missing_field("name", "Span"))?
            .to_owned();
        let duration_ns = v
            .get("duration_ns")
            .and_then(Value::as_u64)
            .ok_or_else(|| DeError::missing_field("duration_ns", "Span"))?;
        let counters = match v.get("counters") {
            Some(c) => c
                .as_object()
                .ok_or_else(|| DeError::expected("counters object", c))?
                .iter()
                .map(|(n, val)| {
                    val.as_u64()
                        .map(|u| (n.clone(), u))
                        .ok_or_else(|| DeError::expected("unsigned integer", val))
                })
                .collect::<Result<_, _>>()?,
            None => Vec::new(),
        };
        let children = match v.get("children") {
            Some(c) => Vec::<Span>::from_value(c).map_err(|e| e.in_field("children"))?,
            None => Vec::new(),
        };
        Ok(Span {
            name,
            duration_ns,
            counters,
            children,
        })
    }
}

/// An in-progress [`Span`]: started at construction, frozen by
/// [`SpanRecorder::finish`].
#[derive(Debug)]
pub struct SpanRecorder {
    name: String,
    started: Instant,
    counters: Vec<(String, u64)>,
    children: Vec<Span>,
}

impl SpanRecorder {
    /// Starts timing a unit of work named `name`.
    #[must_use]
    pub fn start(name: impl Into<String>) -> Self {
        SpanRecorder {
            name: name.into(),
            started: Instant::now(),
            counters: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Attaches a counter to this span (last write wins on duplicates at
    /// lookup time; duplicates are not coalesced).
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.push((name.into(), value));
    }

    /// Runs `f`, recording it as a leaf child span named `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        self.time_in(name, |_| f())
    }

    /// Runs `f` with its own recorder, recording it (and whatever
    /// children/counters `f` adds) as a child span named `name`.
    pub fn time_in<T>(&mut self, name: &str, f: impl FnOnce(&mut SpanRecorder) -> T) -> T {
        let mut child = SpanRecorder::start(name);
        let result = f(&mut child);
        self.children.push(child.finish());
        result
    }

    /// Freezes the recorder into its [`Span`], stamping the duration.
    #[must_use]
    pub fn finish(self) -> Span {
        Span {
            name: self.name,
            duration_ns: duration_ns_since(self.started),
            counters: self.counters,
            children: self.children,
        }
    }
}

/// Nanoseconds elapsed since `started`, saturating at `u64::MAX` (584
/// years — the cast cannot truncate in practice, but the histogram's top
/// bucket absorbs it if it ever does).
#[must_use]
pub fn duration_ns_since(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_a_nested_tree_in_execution_order() {
        let mut root = SpanRecorder::start("plan");
        let x = root.time("resolve", || 2 + 2);
        assert_eq!(x, 4);
        root.time_in("compute", |c| {
            c.counter("segments", 3);
            c.time("stitch", || ());
        });
        root.counter("total", 1);
        let span = root.finish();
        assert_eq!(span.name, "plan");
        assert_eq!(span.children.len(), 2);
        assert_eq!(span.children[0].name, "resolve");
        assert_eq!(span.children[1].name, "compute");
        assert_eq!(span.children[1].counter("segments"), Some(3));
        assert_eq!(span.children[1].children[0].name, "stitch");
        assert_eq!(span.len(), 4);
        assert_eq!(span.find("stitch").unwrap().name, "stitch");
        assert!(span.find("nope").is_none());
    }

    #[test]
    fn children_never_outlast_their_parent() {
        let mut root = SpanRecorder::start("outer");
        root.time("inner", || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        let span = root.finish();
        let inner = span.find("inner").unwrap();
        assert!(inner.duration_ns >= 1_000_000);
        assert!(span.duration_ns >= inner.duration_ns);
    }

    #[test]
    fn serialization_round_trips_and_omits_empty_sections() {
        let span = Span {
            name: "plan".into(),
            duration_ns: 1234,
            counters: vec![("sweeps".into(), 5)],
            children: vec![Span {
                name: "leaf".into(),
                duration_ns: 10,
                counters: vec![],
                children: vec![],
            }],
        };
        let text = serde_json::to_string(&span).unwrap();
        assert!(text.contains("\"sweeps\""));
        // The leaf serializes without counters/children keys.
        assert!(!text.contains("\"counters\": {}"));
        let back: Span = serde_json::from_str(&text).unwrap();
        assert_eq!(back, span);
    }
}
