//! Spatial extents of feature-map tensors.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The per-sample extent of a feature map: `channels × height × width`.
///
/// A batched feature-map tensor `F_l` in the paper has size
/// `B × [H_l × W_l × C_l]`; `FeatureDims` is the bracketed part.  Flat
/// (fully-connected) activations are represented with `height == width == 1`
/// via [`FeatureDims::flat`].
///
/// # Examples
///
/// ```
/// use hypar_tensor::FeatureDims;
///
/// let conv_out = FeatureDims::new(50, 8, 8);
/// assert_eq!(conv_out.volume(), 3200);
///
/// let fc_out = FeatureDims::flat(500);
/// assert_eq!(fc_out.volume(), 500);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureDims {
    /// Number of channels (`C`).
    pub channels: u64,
    /// Spatial height (`H`).
    pub height: u64,
    /// Spatial width (`W`).
    pub width: u64,
}

impl FeatureDims {
    /// Creates feature dimensions with the given channel count and spatial
    /// extent.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; a zero-sized feature map is always a
    /// model-definition bug and catching it here keeps shape inference
    /// honest.
    #[must_use]
    pub fn new(channels: u64, height: u64, width: u64) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "feature dimensions must be positive, got {channels}x{height}x{width}"
        );
        Self {
            channels,
            height,
            width,
        }
    }

    /// Creates flat (vector) feature dimensions as used by fully-connected
    /// layers: `features × 1 × 1`.
    ///
    /// # Panics
    ///
    /// Panics if `features` is zero.
    #[must_use]
    pub fn flat(features: u64) -> Self {
        Self::new(features, 1, 1)
    }

    /// Total number of elements in one sample of this feature map.
    #[must_use]
    pub fn volume(&self) -> u64 {
        self.channels * self.height * self.width
    }

    /// Whether this is a flat (1×1 spatial) feature map, i.e. the shape a
    /// fully-connected layer consumes without implicit flattening.
    #[must_use]
    pub fn is_flat(&self) -> bool {
        self.height == 1 && self.width == 1
    }

    /// The same elements viewed as a flat vector, as happens at the first
    /// fully-connected layer after a convolutional stack.
    #[must_use]
    pub fn flattened(&self) -> Self {
        Self::flat(self.volume())
    }
}

impl fmt::Display for FeatureDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_flat() {
            write!(f, "{}", self.channels)
        } else {
            write!(f, "{}x{}x{}", self.channels, self.height, self.width)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_multiplies_dimensions() {
        assert_eq!(FeatureDims::new(20, 12, 12).volume(), 2880);
        assert_eq!(FeatureDims::new(1, 28, 28).volume(), 784);
    }

    #[test]
    fn flat_is_flat() {
        let dims = FeatureDims::flat(8192);
        assert!(dims.is_flat());
        assert_eq!(dims.volume(), 8192);
        assert_eq!(dims.to_string(), "8192");
    }

    #[test]
    fn flattened_preserves_volume() {
        let dims = FeatureDims::new(50, 4, 4);
        let flat = dims.flattened();
        assert!(flat.is_flat());
        assert_eq!(flat.volume(), dims.volume());
    }

    #[test]
    fn display_spatial_form() {
        assert_eq!(FeatureDims::new(512, 14, 14).to_string(), "512x14x14");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_channel_panics() {
        let _ = FeatureDims::new(0, 1, 1);
    }

    #[test]
    fn equality_and_hash_derive() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(FeatureDims::new(3, 224, 224));
        assert!(set.contains(&FeatureDims::new(3, 224, 224)));
        assert!(!set.contains(&FeatureDims::new(3, 224, 223)));
    }
}
