//! Exact power-of-two fractions.

use std::fmt;
use std::ops::Mul;

use serde::{Deserialize, Serialize};

/// An exact fraction of the form `2^-k`, `k ≥ 0`.
///
/// HyPar's hierarchical partition (Algorithm 2 in the paper) divides work
/// between two groups at every level, so every tensor dimension seen by a
/// sub-level is the full dimension multiplied by a power-of-two fraction:
/// the **batch fraction** accumulates data-parallel choices and the
/// **input-feature fraction** accumulates model-parallel choices.  Storing
/// the exponent instead of a float keeps the algebra exact and `Ord`-able.
///
/// # Examples
///
/// ```
/// use hypar_tensor::Frac;
///
/// let batch = Frac::ONE.halved().halved().halved();
/// assert_eq!(batch.value(), 0.125);
/// assert_eq!(batch.denominator(), 8);
/// assert_eq!((batch * Frac::ONE.halved()).denominator(), 16);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Frac {
    /// The exponent `k` of the denominator `2^k`. `Ord` is derived on this
    /// field, so *larger* `Frac` values compare *greater* when they denote a
    /// smaller fraction; use [`Frac::value`] for numeric comparisons.
    log2_denom: u32,
}

impl Frac {
    /// The whole fraction `1` (nothing has been partitioned yet).
    pub const ONE: Self = Self { log2_denom: 0 };

    /// Creates the fraction `2^-log2_denom`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hypar_tensor::Frac;
    /// assert_eq!(Frac::new(4).value(), 1.0 / 16.0);
    /// ```
    #[must_use]
    pub fn new(log2_denom: u32) -> Self {
        Self { log2_denom }
    }

    /// This fraction divided by two — the effect of one more binary
    /// partition level.
    #[must_use]
    pub fn halved(self) -> Self {
        Self {
            log2_denom: self.log2_denom + 1,
        }
    }

    /// The exponent `k` such that the fraction equals `2^-k`.
    #[must_use]
    pub fn log2_denom(self) -> u32 {
        self.log2_denom
    }

    /// The denominator `2^k` as an integer.
    ///
    /// # Panics
    ///
    /// Panics if the denominator does not fit in a `u64` (k > 63), which
    /// would require a 2^64-accelerator array.
    #[must_use]
    pub fn denominator(self) -> u64 {
        assert!(self.log2_denom < 64, "fraction denominator overflows u64");
        1u64 << self.log2_denom
    }

    /// The exact numeric value of the fraction.
    ///
    /// Powers of two are represented exactly by `f64` for every realistic
    /// hierarchy depth, so scaling element counts by this value is exact.
    #[must_use]
    pub fn value(self) -> f64 {
        (-(f64::from(self.log2_denom))).exp2()
    }

    /// Scales a quantity by this fraction.
    ///
    /// # Examples
    ///
    /// ```
    /// use hypar_tensor::Frac;
    /// assert_eq!(Frac::new(2).scale(1024.0), 256.0);
    /// ```
    #[must_use]
    pub fn scale(self, quantity: f64) -> f64 {
        quantity * self.value()
    }
}

impl Default for Frac {
    fn default() -> Self {
        Self::ONE
    }
}

impl Mul for Frac {
    type Output = Self;

    // Multiplying `2^-a` by `2^-b` adds the exponents.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn mul(self, rhs: Self) -> Self {
        Self {
            log2_denom: self.log2_denom + rhs.log2_denom,
        }
    }
}

impl fmt::Display for Frac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.log2_denom == 0 {
            write!(f, "1")
        } else {
            write!(f, "1/{}", self.denominator())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn one_is_identity() {
        assert_eq!(Frac::ONE.value(), 1.0);
        assert_eq!(Frac::ONE.denominator(), 1);
        assert_eq!(Frac::ONE * Frac::new(3), Frac::new(3));
        assert_eq!(Frac::default(), Frac::ONE);
    }

    #[test]
    fn halving_doubles_denominator() {
        let f = Frac::ONE.halved();
        assert_eq!(f.denominator(), 2);
        assert_eq!(f.halved().denominator(), 4);
    }

    #[test]
    fn scale_is_exact_for_powers_of_two() {
        // 2^-10 of 3 * 2^20 elements must be exactly 3 * 2^10.
        let f = Frac::new(10);
        assert_eq!(f.scale(3.0 * 1024.0 * 1024.0), 3.0 * 1024.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Frac::ONE.to_string(), "1");
        assert_eq!(Frac::new(4).to_string(), "1/16");
    }

    #[test]
    fn ordering_follows_exponent() {
        // Note: Ord is on the exponent, so the *smaller* fraction is Greater.
        assert!(Frac::new(2) > Frac::new(1));
        assert!(Frac::new(2).value() < Frac::new(1).value());
    }

    proptest! {
        #[test]
        fn multiplication_matches_value_product(a in 0u32..30, b in 0u32..30) {
            let fa = Frac::new(a);
            let fb = Frac::new(b);
            prop_assert_eq!((fa * fb).value(), fa.value() * fb.value());
        }

        #[test]
        fn value_round_trips_denominator(k in 0u32..60) {
            let f = Frac::new(k);
            prop_assert_eq!(f.value(), 1.0 / f.denominator() as f64);
        }

        #[test]
        fn halved_is_multiplication_by_half(k in 0u32..60) {
            let f = Frac::new(k);
            prop_assert_eq!(f.halved(), f * Frac::new(1));
        }
    }
}
