//! Tensor shape algebra and unit types for the HyPar reproduction.
//!
//! HyPar ("HyPar: Towards Hybrid Parallelism for Deep Learning Accelerator
//! Array", HPCA 2019) reasons about deep-learning training entirely in terms
//! of **tensor sizes**: feature maps `F`, kernels `W`, gradients `ΔW`, and
//! errors `E`.  This crate provides the small vocabulary shared by every
//! other crate in the workspace:
//!
//! * [`FeatureDims`] — the `C×H×W` extent of one feature-map sample;
//! * [`Frac`] — exact power-of-two fractions used to track how tensors
//!   shrink as the hierarchical partition descends accelerator-array levels;
//! * unit newtypes ([`Bytes`], [`Seconds`], [`Joules`]) so that quantities
//!   with different meanings cannot be confused ([C-NEWTYPE]).
//!
//! # Examples
//!
//! ```
//! use hypar_tensor::{FeatureDims, Frac};
//!
//! // One VGG conv5 output sample: 512 channels of 14×14.
//! let dims = FeatureDims::new(512, 14, 14);
//! assert_eq!(dims.volume(), 512 * 14 * 14);
//!
//! // After two data-parallel splits the batch fraction is 1/4.
//! let frac = Frac::ONE.halved().halved();
//! assert_eq!(frac.value(), 0.25);
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dims;
mod frac;
mod units;

pub use dims::FeatureDims;
pub use frac::Frac;
pub use units::{Bytes, Joules, Seconds};
