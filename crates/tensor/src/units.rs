//! Unit newtypes for quantities exchanged between the simulator crates.
//!
//! Communication volumes, simulated times, and energies flow through many
//! APIs in this workspace; wrapping them in newtypes prevents a byte count
//! from being added to a joule count and gives every quantity a
//! human-readable [`std::fmt::Display`] used by the experiment harness.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

use serde::{Deserialize, Serialize};

macro_rules! unit_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Copy, Clone, Debug, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// The raw numeric value in base units.
            #[must_use]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Whether the quantity is exactly zero.
            #[must_use]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

unit_newtype! {
    /// A count of bytes moved or stored.
    ///
    /// # Examples
    ///
    /// ```
    /// use hypar_tensor::Bytes;
    /// let total: Bytes = [Bytes(500.0), Bytes(500.0)].into_iter().sum();
    /// assert_eq!(total.value(), 1000.0);
    /// assert_eq!(total.to_string(), "1.00 KB");
    /// ```
    Bytes
}

unit_newtype! {
    /// A simulated duration in seconds.
    ///
    /// # Examples
    ///
    /// ```
    /// use hypar_tensor::Seconds;
    /// assert_eq!((Seconds(0.5) + Seconds(1.5)).value(), 2.0);
    /// ```
    Seconds
}

unit_newtype! {
    /// An energy in joules.
    ///
    /// # Examples
    ///
    /// ```
    /// use hypar_tensor::Joules;
    /// assert_eq!((Joules(2.0) * 0.5).value(), 1.0);
    /// ```
    Joules
}

impl Bytes {
    /// Bytes for an element count at the given per-element precision.
    ///
    /// The paper computes throughout with 32-bit floating point, i.e. a
    /// precision of 4 bytes per element.
    ///
    /// # Examples
    ///
    /// ```
    /// use hypar_tensor::Bytes;
    /// // 70x100 fc kernel at fp32: the paper's 28 KB (x2 directions = 56 KB).
    /// assert_eq!(Bytes::from_elems(70.0 * 100.0, 4).value(), 28_000.0);
    /// ```
    #[must_use]
    pub fn from_elems(elems: f64, precision_bytes: u32) -> Self {
        Self(elems * f64::from(precision_bytes))
    }

    /// The value expressed in gigabytes (10^9 bytes), the unit of the
    /// paper's Figure 8.
    #[must_use]
    pub fn gigabytes(self) -> f64 {
        self.0 / 1e9
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0;
        if v.abs() >= 1e9 {
            write!(f, "{:.2} GB", v / 1e9)
        } else if v.abs() >= 1e6 {
            write!(f, "{:.2} MB", v / 1e6)
        } else if v.abs() >= 1e3 {
            write!(f, "{:.2} KB", v / 1e3)
        } else {
            write!(f, "{v:.0} B")
        }
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0;
        if v.abs() >= 1.0 {
            write!(f, "{v:.3} s")
        } else if v.abs() >= 1e-3 {
            write!(f, "{:.3} ms", v * 1e3)
        } else {
            write!(f, "{:.3} us", v * 1e6)
        }
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0;
        if v.abs() >= 1.0 {
            write!(f, "{v:.3} J")
        } else if v.abs() >= 1e-3 {
            write!(f, "{:.3} mJ", v * 1e3)
        } else {
            write!(f, "{:.3} uJ", v * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_display_scales() {
        assert_eq!(Bytes(12.0).to_string(), "12 B");
        assert_eq!(Bytes(56_000.0).to_string(), "56.00 KB");
        assert_eq!(Bytes(25.6e6).to_string(), "25.60 MB");
        assert_eq!(Bytes(16.9e9).to_string(), "16.90 GB");
    }

    #[test]
    fn seconds_display_scales() {
        assert_eq!(Seconds(2.5).to_string(), "2.500 s");
        assert_eq!(Seconds(2.5e-3).to_string(), "2.500 ms");
        assert_eq!(Seconds(2.5e-6).to_string(), "2.500 us");
    }

    #[test]
    fn joules_display_scales() {
        assert_eq!(Joules(3.0).to_string(), "3.000 J");
        assert_eq!(Joules(0.5e-3).to_string(), "500.000 uJ");
    }

    #[test]
    fn arithmetic_behaves() {
        let mut b = Bytes::ZERO;
        b += Bytes(10.0);
        assert_eq!((b + Bytes(5.0)).value(), 15.0);
        assert!(Bytes::ZERO.is_zero());
        assert!(!b.is_zero());
    }

    #[test]
    fn from_elems_uses_precision() {
        assert_eq!(Bytes::from_elems(100.0, 4).value(), 400.0);
        assert_eq!(Bytes::from_elems(100.0, 2).value(), 200.0);
    }

    #[test]
    fn gigabytes_matches_paper_unit() {
        assert!((Bytes(16.9e9).gigabytes() - 16.9).abs() < 1e-12);
    }
}
