//! Partition a network that is not in the paper's zoo: a speech-style
//! model with a convolutional front-end and a deep fully-connected stack —
//! exactly the mixed workload where neither pure data nor pure model
//! parallelism is right.
//!
//! ```text
//! cargo run --release -p hypar-bench --example custom_network
//! ```

use hypar_comm::NetworkCommTensors;
use hypar_core::{baselines, hierarchical};
use hypar_models::{ConvSpec, Network, NetworkShapes, PoolSpec};
use hypar_sim::{training, ArchConfig};
use hypar_tensor::FeatureDims;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-D "spectrogram" input: 3 x 128 x 128.
    let network = Network::builder("speech-hybrid", FeatureDims::new(3, 128, 128))
        .conv("conv1", ConvSpec::same(64, 5))
        .pool(PoolSpec::max2())
        .conv("conv2", ConvSpec::same(128, 3))
        .pool(PoolSpec::max2())
        .conv("conv3", ConvSpec::same(128, 3))
        .pool(PoolSpec::max2())
        .fully_connected("fc1", 2048)
        .fully_connected("fc2", 2048)
        .fully_connected("fc3", 2048)
        .fully_connected("fc4", 512)
        .build()?;

    let shapes = NetworkShapes::infer(&network, 128)?;
    let tensors = NetworkCommTensors::from_shapes(&shapes);

    // An eight-accelerator array: three hierarchy levels.
    let levels = 3;
    let plan = hierarchical::partition(&tensors, levels);
    println!("{plan}");

    let cfg = ArchConfig::paper();
    let hypar = training::simulate_step(&shapes, &plan, &cfg).expect("plan matches the network");
    for (name, baseline) in [
        ("Data Parallelism", baselines::all_data(&tensors, levels)),
        ("Model Parallelism", baselines::all_model(&tensors, levels)),
        (
            "one weird trick",
            baselines::one_weird_trick(&tensors, levels),
        ),
    ] {
        let report =
            training::simulate_step(&shapes, &baseline, &cfg).expect("plan matches the network");
        println!(
            "vs {name:>18}: {:.2}x faster, {:.2}x more energy efficient ({} vs {} comm)",
            hypar.performance_gain_over(&report),
            hypar.energy_efficiency_over(&report),
            plan.total_comm_bytes(),
            baseline.total_comm_bytes(),
        );
    }

    // The per-accelerator memory footprint must fit the HMC's 8 GB.
    println!(
        "per-accelerator footprint: {} (fits 8 GB HMC: {})",
        hypar.dram_footprint_bytes,
        hypar.fits_capacity(cfg.dram_capacity_bytes)
    );
    Ok(())
}
