//! Quickstart: plan a network through the HyPar planning engine and
//! compare the result against the standard baselines.
//!
//! ```text
//! cargo run --release -p hypar --example quickstart
//! ```

use hypar_engine::{PlanEngine, PlanRequest, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. One engine serves every query below; identical workloads are
    //    answered from its plan cache.
    let engine = PlanEngine::new();
    let base = PlanRequest::zoo("AlexNet").batch(256).levels(4);

    // 2. HyPar's hierarchical partition plus a full training-step
    //    simulation, in one request.
    let hypar = engine.plan(&base.clone().simulate(true))?;
    println!(
        "{}: {} weighted layers on {} accelerators",
        hypar.network,
        hypar.plan.num_layers(),
        hypar.accelerators,
    );
    println!("\n{}", hypar.plan);

    // 3. Compare the communication of the plan against the baselines —
    //    the same engine runs dp, mp, and the "one weird trick".
    println!("total communication per step:");
    for (label, strategy) in [
        ("Data Parallelism", Strategy::Dp),
        ("Model Parallelism", Strategy::Mp),
        ("one weird trick", Strategy::Owt),
        ("HyPar", Strategy::Hypar),
    ] {
        let response = engine.plan(&base.clone().strategy(strategy))?;
        println!("  {label:>20}: {:.2} MB", response.total_comm_bytes / 1e6);
    }

    // 4. Simulated speedup over Data Parallelism on the paper's HMC array.
    let dp = engine.plan(&base.clone().strategy(Strategy::Dp).simulate(true))?;
    let hypar_report = hypar.simulation.as_ref().expect("simulation requested");
    let dp_report = dp.simulation.as_ref().expect("simulation requested");
    println!(
        "\nsimulated step: HyPar {} vs Data Parallelism {}  ({:.2}x speedup, {:.2}x energy)",
        hypar_report.step_time,
        dp_report.step_time,
        hypar_report.performance_gain_over(dp_report),
        hypar_report.energy_efficiency_over(dp_report),
    );

    // 5. A repeated query never recomputes: it is served from the cache.
    let again = engine.plan(&base.clone().simulate(true))?;
    assert!(again.cache_hit);
    let stats = engine.cache_stats();
    println!(
        "plan cache: {} hit(s), {} miss(es), {} plan(s) stored",
        stats.hits, stats.misses, stats.entries
    );
    Ok(())
}
