//! Quickstart: partition a network for an accelerator array and compare
//! the result against the standard baselines.
//!
//! ```text
//! cargo run --release -p hypar-bench --example quickstart
//! ```

use hypar_comm::NetworkCommTensors;
use hypar_core::{baselines, hierarchical};
use hypar_models::{zoo, NetworkShapes};
use hypar_sim::{training, ArchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a network and a batch size. The zoo has the paper's ten
    //    models; `Network::builder` makes custom ones.
    let network = zoo::alexnet();
    let batch = 256;
    let shapes = NetworkShapes::infer(&network, batch)?;
    println!(
        "{}: {} weighted layers, {:.1} M weights, {:.1} GMAC per training step",
        network.name(),
        network.num_layers(),
        shapes.total_weight_elems() as f64 / 1e6,
        shapes.total_macs_training() as f64 / 1e9,
    );

    // 2. Run HyPar's hierarchical partition for a 16-accelerator array
    //    (four binary levels).
    let tensors = NetworkCommTensors::from_shapes(&shapes);
    let plan = hierarchical::partition(&tensors, 4);
    println!("\n{plan}");

    // 3. Compare the communication of the plan against the baselines.
    let dp = baselines::all_data(&tensors, 4);
    let mp = baselines::all_model(&tensors, 4);
    let owt = baselines::one_weird_trick(&tensors, 4);
    println!("total communication per step:");
    for p in [&dp, &mp, &owt, &plan] {
        println!("  {:>24}: {}", label(p, &plan), p.total_comm_bytes());
    }

    // 4. Simulate one training step on the paper's HMC-based array.
    let cfg = ArchConfig::paper();
    let hypar_report = training::simulate_step(&shapes, &plan, &cfg);
    let dp_report = training::simulate_step(&shapes, &dp, &cfg);
    println!(
        "\nsimulated step: HyPar {} vs Data Parallelism {}  ({:.2}x speedup, {:.2}x energy)",
        hypar_report.step_time,
        dp_report.step_time,
        hypar_report.performance_gain_over(&dp_report),
        hypar_report.energy_efficiency_over(&dp_report),
    );
    Ok(())
}

fn label(plan: &hypar_core::HierarchicalPlan, hypar: &hypar_core::HierarchicalPlan) -> String {
    if std::ptr::eq(plan, hypar) {
        "HyPar".to_owned()
    } else if plan.levels().iter().flatten().all(|&p| p == hypar_comm::Parallelism::Data) {
        "Data Parallelism".to_owned()
    } else if plan.levels().iter().flatten().all(|&p| p == hypar_comm::Parallelism::Model) {
        "Model Parallelism".to_owned()
    } else {
        "one weird trick".to_owned()
    }
}
