//! Scalability study (the paper's Figure 11 methodology) for any zoo
//! network: how do HyPar and Data Parallelism scale from 1 to 64
//! accelerators?
//!
//! ```text
//! cargo run --release -p hypar-bench --example scalability_study [network]
//! ```

use hypar_bench::report::{ratio, Table};
use hypar_comm::NetworkCommTensors;
use hypar_core::{baselines, hierarchical};
use hypar_models::{zoo, NetworkShapes};
use hypar_sim::{training, ArchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "AlexNet".to_owned());
    let Some(network) = zoo::by_name(&name) else {
        eprintln!("unknown network `{name}`; choose one of {:?}", zoo::NAMES);
        std::process::exit(1);
    };

    let shapes = NetworkShapes::infer(&network, 256)?;
    let tensors = NetworkCommTensors::from_shapes(&shapes);
    let cfg = ArchConfig::paper();
    let single = training::simulate_single_accelerator(&shapes, &cfg);

    let mut table = Table::new(
        format!("{name}: scaling from 1 to 64 accelerators (batch 256)"),
        &["accels", "HyPar gain", "DP gain", "HyPar step", "DP step"],
    );
    for levels in 0..=6usize {
        let hypar = hierarchical::partition(&tensors, levels);
        let dp = baselines::all_data(&tensors, levels);
        let hypar_report = training::simulate_step(&shapes, &hypar, &cfg);
        let dp_report = training::simulate_step(&shapes, &dp, &cfg);
        table.row(&[
            (1u64 << levels).to_string(),
            ratio(hypar_report.performance_gain_over(&single)),
            ratio(dp_report.performance_gain_over(&single)),
            hypar_report.step_time.to_string(),
            dp_report.step_time.to_string(),
        ]);
    }
    println!("{table}");
    Ok(())
}
