//! Scalability study (the paper's Figure 11 methodology) for any zoo
//! network: how do HyPar and Data Parallelism scale from 1 to 64
//! accelerators?
//!
//! The whole campaign — fourteen plans, each with a full training-step
//! simulation — is one `plan_many` batch fanned across cores by the
//! planning engine.
//!
//! ```text
//! cargo run --release -p hypar --example scalability_study [network]
//! ```

use hypar_bench::report::{ratio, Table};
use hypar_engine::{PlanEngine, PlanRequest, Strategy};
use hypar_models::zoo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "AlexNet".to_owned());
    if zoo::by_name(&name).is_none() {
        eprintln!("unknown network `{name}`; choose one of {:?}", zoo::NAMES);
        std::process::exit(1);
    }

    let engine = PlanEngine::new();
    let requests: Vec<PlanRequest> = (0..=6usize)
        .flat_map(|levels| {
            let base = PlanRequest::zoo(&name)
                .batch(256)
                .levels(levels)
                .simulate(true);
            [base.clone(), base.strategy(Strategy::Dp)]
        })
        .collect();
    let responses = engine
        .plan_many(&requests)
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;

    let single = responses[0]
        .simulation
        .clone()
        .expect("simulation requested");
    let mut table = Table::new(
        format!("{name}: scaling from 1 to 64 accelerators (batch 256)"),
        &["accels", "HyPar gain", "DP gain", "HyPar step", "DP step"],
    );
    for (levels, pair) in responses.chunks(2).enumerate() {
        let hypar = pair[0].simulation.as_ref().expect("simulation requested");
        let dp = pair[1].simulation.as_ref().expect("simulation requested");
        table.row(&[
            (1u64 << levels).to_string(),
            ratio(hypar.performance_gain_over(&single)),
            ratio(dp.performance_gain_over(&single)),
            hypar.step_time.to_string(),
            dp.step_time.to_string(),
        ]);
    }
    println!("{table}");
    Ok(())
}
