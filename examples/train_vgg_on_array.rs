//! Simulate VGG-A training on the paper's sixteen-accelerator HMC array,
//! with every parallelism scheme and both network topologies.
//!
//! ```text
//! cargo run --release -p hypar-bench --example train_vgg_on_array
//! ```

use hypar_bench::report::Table;
use hypar_comm::NetworkCommTensors;
use hypar_core::{baselines, hierarchical, HierarchicalPlan};
use hypar_models::{zoo, NetworkShapes};
use hypar_sim::{training, ArchConfig, Topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shapes = NetworkShapes::infer(&zoo::vgg_a(), 256)?;
    let tensors = NetworkCommTensors::from_shapes(&shapes);

    let schemes: Vec<(&str, HierarchicalPlan)> = vec![
        ("Model Parallelism", baselines::all_model(&tensors, 4)),
        ("Data Parallelism", baselines::all_data(&tensors, 4)),
        ("one weird trick", baselines::one_weird_trick(&tensors, 4)),
        ("HyPar", hierarchical::partition(&tensors, 4)),
    ];

    let cfg = ArchConfig::paper();
    let mut table = Table::new(
        "VGG-A, batch 256, 16 accelerators (H tree)",
        &["scheme", "step time", "energy", "comm/step", "link busy"],
    );
    let mut step_times = Vec::new();
    for (name, plan) in &schemes {
        let report =
            training::simulate_step(&shapes, plan, &cfg).expect("plan matches the network");
        table.row(&[
            (*name).to_owned(),
            report.step_time.to_string(),
            report.energy.to_string(),
            report.comm_bytes.to_string(),
            report.link_busy.to_string(),
        ]);
        step_times.push((name, report.step_time));
    }
    println!("{table}");

    // Topology study: the same HyPar plan on a torus.
    let hypar = &schemes.last().expect("schemes is non-empty").1;
    let torus_cfg = ArchConfig::paper().with_topology(Topology::Torus);
    let htree = training::simulate_step(&shapes, hypar, &cfg).expect("plan matches the network");
    let torus =
        training::simulate_step(&shapes, hypar, &torus_cfg).expect("plan matches the network");
    println!(
        "HyPar on torus: {} vs H tree {} ({:.2}x slower)",
        torus.step_time,
        htree.step_time,
        torus.step_time.value() / htree.step_time.value()
    );

    // Comm/compute overlap ablation.
    let overlap = training::simulate_step(&shapes, hypar, &cfg.clone().with_overlap(true))
        .expect("plan matches the network");
    println!(
        "comm/compute overlap ablation: {} -> {} ({:.1}% faster)",
        htree.step_time,
        overlap.step_time,
        100.0 * (1.0 - overlap.step_time.value() / htree.step_time.value())
    );
    Ok(())
}
