//! Facade crate for the HyPar reproduction workspace.
//!
//! Re-exports every sub-crate under one roof so downstream users (and the
//! repository-level examples and integration tests) can depend on a single
//! `hypar` package:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`tensor`] | `hypar-tensor` | shape algebra, unit newtypes |
//! | [`models`] | `hypar-models` | layer/network descriptions, shape inference, the paper's zoo |
//! | [`comm`]   | `hypar-comm`   | the Table 1/2 communication model |
//! | [`core`]   | `hypar-core`   | Algorithms 1 and 2, baselines, exhaustive search |
//! | [`graph`]  | `hypar-graph`  | DAG network IR: branchy models segmented and planned |
//! | [`sim`]    | `hypar-sim`    | the event-driven accelerator-array simulator |
//! | [`telemetry`] | `hypar-telemetry` | metrics registry and per-request span traces |
//! | [`bench`]  | `hypar-bench`  | paper table/figure reproduction harness |
//! | [`engine`] | `hypar-engine` | the cached, parallel planning-engine service |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hypar_bench as bench;
pub use hypar_comm as comm;
pub use hypar_core as core;
pub use hypar_engine as engine;
pub use hypar_graph as graph;
pub use hypar_models as models;
pub use hypar_sim as sim;
pub use hypar_telemetry as telemetry;
pub use hypar_tensor as tensor;
