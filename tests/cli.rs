//! End-to-end tests of the `repro` and `plan` command-line tools.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (bool, String, String) {
    let exe = match bin {
        "repro" => env!("CARGO_BIN_EXE_repro"),
        "plan" => env!("CARGO_BIN_EXE_plan"),
        other => panic!("unknown binary {other}"),
    };
    let output = Command::new(exe).args(args).output().expect("binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn repro_prints_table1() {
    let (ok, stdout, _) = run("repro", &["--exp", "table1"]);
    assert!(ok);
    assert!(stdout.contains("Table 1"));
    assert!(stdout.contains("56.00 KB"));
    assert!(stdout.contains("819.20 KB"));
}

#[test]
fn repro_writes_json() {
    let path = std::env::temp_dir().join("hypar_repro_table2.json");
    let path_str = path.to_str().expect("utf-8 temp path");
    let (ok, _, _) = run("repro", &["--exp", "table2", "--json", path_str]);
    assert!(ok);
    let payload = std::fs::read_to_string(&path).expect("json written");
    let value: serde_json::Value = serde_json::from_str(&payload).expect("valid json");
    assert!(value.get("table2").is_some());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn repro_rejects_unknown_experiment() {
    let (ok, _, stderr) = run("repro", &["--exp", "fig99"]);
    assert!(!ok);
    assert!(stderr.contains("unknown experiment"));
}

#[test]
fn plan_prints_grid_and_report() {
    let (ok, stdout, _) = run("plan", &["Lenet-c", "--levels", "2", "--batch", "64"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("H1"));
    assert!(stdout.contains("step time"));
    assert!(stdout.contains("communication"));
}

#[test]
fn plan_writes_chrome_trace() {
    let path = std::env::temp_dir().join("hypar_plan_trace.json");
    let path_str = path.to_str().expect("utf-8 temp path");
    let (ok, stdout, _) = run(
        "plan",
        &[
            "SCONV", "--levels", "2", "--batch", "32", "--trace", path_str,
        ],
    );
    assert!(ok, "{stdout}");
    let trace = std::fs::read_to_string(&path).expect("trace written");
    assert!(trace.contains("fwd conv1"));
    assert!(trace.contains("thread_name"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn plan_rejects_unknown_network() {
    let (ok, _, stderr) = run("plan", &["ResNet-50"]);
    assert!(!ok);
    assert!(stderr.contains("unknown network"));
}

#[test]
fn plan_supports_all_schemes() {
    for scheme in ["hypar", "dp", "mp", "owt"] {
        let (ok, stdout, _) = run(
            "plan",
            &["SFC", "--levels", "2", "--batch", "32", "--scheme", scheme],
        );
        assert!(ok, "scheme {scheme}: {stdout}");
    }
}
