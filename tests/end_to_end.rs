//! End-to-end integration: model zoo → shape inference → communication
//! model → partition search → event-driven simulation, for every network
//! of the paper's evaluation.

use hypar_comm::NetworkCommTensors;
use hypar_core::{baselines, hierarchical};
use hypar_models::{zoo, NetworkShapes};
use hypar_sim::{training, ArchConfig, Topology};

const BATCH: u64 = 256;
const LEVELS: usize = 4;

fn pipeline(name: &str) -> (NetworkShapes, NetworkCommTensors) {
    let net = zoo::by_name(name).expect("zoo network");
    let shapes = NetworkShapes::infer(&net, BATCH).expect("valid network");
    let tensors = NetworkCommTensors::from_shapes(&shapes);
    (shapes, tensors)
}

#[test]
fn full_pipeline_runs_for_every_zoo_network() {
    for name in zoo::NAMES {
        let (shapes, tensors) = pipeline(name);
        let plan = hierarchical::partition(&tensors, LEVELS);
        assert_eq!(plan.num_levels(), LEVELS, "{name}");
        assert_eq!(plan.num_layers(), shapes.len(), "{name}");
        let report = training::simulate_step(&shapes, &plan, &ArchConfig::paper())
            .expect("plan matches the network");
        assert!(report.step_time.value() > 0.0, "{name}");
        assert!(report.energy.value() > 0.0, "{name}");
    }
}

#[test]
fn simulated_traffic_always_matches_the_analytic_model() {
    for name in zoo::NAMES {
        let (shapes, tensors) = pipeline(name);
        for plan in [
            hierarchical::partition(&tensors, LEVELS),
            baselines::all_data(&tensors, LEVELS),
            baselines::all_model(&tensors, LEVELS),
            baselines::one_weird_trick(&tensors, LEVELS),
        ] {
            let report = training::simulate_step(&shapes, &plan, &ArchConfig::paper())
                .expect("plan matches the network");
            let model = plan.total_comm_bytes().value();
            assert!(
                (report.comm_bytes.value() - model).abs() <= 1e-6 * model.max(1.0),
                "{name}: simulator {} vs model {}",
                report.comm_bytes.value(),
                model,
            );
        }
    }
}

#[test]
fn hypar_is_never_slower_than_the_best_baseline() {
    let cfg = ArchConfig::paper();
    for name in zoo::NAMES {
        let (shapes, tensors) = pipeline(name);
        let hypar =
            training::simulate_step(&shapes, &hierarchical::partition(&tensors, LEVELS), &cfg)
                .expect("plan matches the network");
        for baseline in [
            baselines::all_data(&tensors, LEVELS),
            baselines::all_model(&tensors, LEVELS),
        ] {
            let report = training::simulate_step(&shapes, &baseline, &cfg)
                .expect("plan matches the network");
            assert!(
                hypar.step_time.value() <= report.step_time.value() * 1.0001,
                "{name}: HyPar {} vs baseline {}",
                hypar.step_time,
                report.step_time,
            );
        }
    }
}

#[test]
fn htree_meets_or_beats_torus_under_hypar_plans() {
    let htree_cfg = ArchConfig::paper();
    let torus_cfg = ArchConfig::paper().with_topology(Topology::Torus);
    for name in zoo::NAMES {
        let (shapes, tensors) = pipeline(name);
        let plan = hierarchical::partition(&tensors, LEVELS);
        let htree =
            training::simulate_step(&shapes, &plan, &htree_cfg).expect("plan matches the network");
        let torus =
            training::simulate_step(&shapes, &plan, &torus_cfg).expect("plan matches the network");
        assert!(
            htree.step_time.value() <= torus.step_time.value() * 1.0001,
            "{name}"
        );
    }
}

#[test]
fn deeper_hierarchies_reduce_per_accelerator_footprint() {
    let (shapes, tensors) = pipeline("VGG-A");
    let cfg = ArchConfig::paper();
    let mut last = f64::INFINITY;
    for levels in [0usize, 2, 4, 6] {
        let plan = hierarchical::partition(&tensors, levels);
        let report =
            training::simulate_step(&shapes, &plan, &cfg).expect("plan matches the network");
        let footprint = report.dram_footprint_bytes.value();
        assert!(footprint < last, "footprint must shrink with more levels");
        last = footprint;
    }
}

#[test]
fn plans_serialize_and_deserialize() {
    let (_, tensors) = pipeline("Lenet-c");
    let plan = hierarchical::partition(&tensors, LEVELS);
    let json = serde_json::to_string(&plan).expect("plans serialize");
    let back: hypar_core::HierarchicalPlan =
        serde_json::from_str(&json).expect("plans deserialize");
    assert_eq!(back, plan);
}

#[test]
fn one_weird_trick_sits_between_dp_and_hypar_for_imagenet_models() {
    // §6.5.2: the trick beats default Data Parallelism but loses to HyPar.
    let cfg = ArchConfig::paper();
    for name in ["AlexNet", "VGG-A", "VGG-E"] {
        let (shapes, tensors) = pipeline(name);
        let dp = training::simulate_step(&shapes, &baselines::all_data(&tensors, LEVELS), &cfg)
            .expect("plan matches the network");
        let owt =
            training::simulate_step(&shapes, &baselines::one_weird_trick(&tensors, LEVELS), &cfg)
                .expect("plan matches the network");
        let hypar =
            training::simulate_step(&shapes, &hierarchical::partition(&tensors, LEVELS), &cfg)
                .expect("plan matches the network");
        assert!(
            owt.step_time.value() < dp.step_time.value(),
            "{name}: trick should beat DP"
        );
        assert!(
            hypar.step_time.value() <= owt.step_time.value() * 1.0001,
            "{name}: HyPar should meet or beat the trick"
        );
    }
}
