//! Cross-crate validation of the communication model and the partition
//! algorithms against the paper's published numbers and against brute
//! force.

use hypar_comm::{NetworkCommTensors, Parallelism, ScaleState};
use hypar_core::{baselines, evaluate::evaluate_plan, exhaustive, hierarchical, two_group};
use hypar_models::zoo;

fn view(name: &str, batch: u64) -> NetworkCommTensors {
    NetworkCommTensors::from_network(&zoo::by_name(name).expect("zoo name"), batch)
        .expect("valid network")
}

#[test]
fn figure8_data_parallelism_column_reproduces_exactly() {
    // All-dp total communication is 2 x (2^H - 1) x A(W): the paper's
    // Figure 8 DP column for the networks whose hyper-parameters the paper
    // pins down. Values in GB.
    for (name, paper_gb) in [
        ("SFC", 16.9),
        ("SCONV", 0.0121),
        ("Lenet-c", 0.0517),
        ("Cifar-c", 0.0174),
        ("VGG-A", 15.9),
        ("VGG-B", 16.0),
    ] {
        let net = view(name, 256);
        let dp = baselines::all_data(&net, 4);
        let measured = dp.total_comm_bytes().gigabytes();
        assert!(
            (measured - paper_gb).abs() / paper_gb < 0.02,
            "{name}: measured {measured:.4} GB vs paper {paper_gb} GB"
        );
    }
}

#[test]
fn dp_equals_brute_force_on_every_feasible_zoo_network() {
    for name in zoo::NAMES {
        let net = view(name, 256);
        if net.len() > 14 {
            continue; // 2^L too large for brute force; covered by proptests.
        }
        let scales = ScaleState::identity(net.len());
        let dp = two_group::partition(&net, &scales);
        let (brute, assignment) = exhaustive::best_level(&net, &scales).unwrap();
        assert!(
            (dp.comm_elems - brute).abs() <= 1e-9 * brute.max(1.0),
            "{name}: DP {} vs brute {brute}",
            dp.comm_elems
        );
        // The assignments may differ only on exact ties.
        let dp_cost = hypar_comm::level_cost(&net, &scales, &dp.assignment).total_elems();
        let brute_cost = hypar_comm::level_cost(&net, &scales, &assignment).total_elems();
        assert!(
            (dp_cost - brute_cost).abs() <= 1e-9 * brute_cost.max(1.0),
            "{name}"
        );
    }
}

#[test]
fn greedy_hierarchical_matches_joint_optimum_on_small_networks() {
    for (name, levels) in [("SFC", 3), ("SCONV", 3), ("Lenet-c", 3), ("Cifar-c", 2)] {
        let net = view(name, 256);
        let greedy = hierarchical::partition(&net, levels).total_comm_elems();
        let (joint, _) = exhaustive::best_joint(&net, levels).unwrap();
        assert!(joint <= greedy * (1.0 + 1e-12), "{name}");
        assert!(
            greedy <= joint * 1.3,
            "{name}: greedy {greedy} too far from joint optimum {joint}"
        );
    }
}

#[test]
fn uniform_baselines_scale_as_two_to_the_h_minus_one() {
    // Neither uniform scheme shrinks its dominant intra-layer tensor with
    // depth (dp never shrinks ΔW, mp never shrinks F_out), so the total
    // communication of both grows as (2^H - 1): exactly for dp, and
    // slightly sub-linearly for mp whose junction terms do shrink.
    let net = view("VGG-A", 256);
    let mp2 = baselines::all_model(&net, 2).total_comm_elems();
    let mp4 = baselines::all_model(&net, 4).total_comm_elems();
    let dp2 = baselines::all_data(&net, 2).total_comm_elems();
    let dp4 = baselines::all_data(&net, 4).total_comm_elems();
    assert!((dp4 / dp2 - 5.0).abs() < 1e-9, "dp ratio {}", dp4 / dp2);
    assert!(
        mp4 / mp2 > 4.5 && mp4 / mp2 <= 5.0,
        "mp ratio {}",
        mp4 / mp2
    );
}

#[test]
fn batch_size_flips_the_fc_decision() {
    // §6.5.2: fc3 (4096 x 1000) ties at batch 4096 (dp wins the tie) but
    // prefers mp at small batches.
    let small = NetworkCommTensors::from_layers(
        "fc3-b32",
        32,
        vec![hypar_comm::LayerCommTensors::fully_connected(
            "fc3", 32, 4096, 1000,
        )],
    );
    let result = two_group::partition(&small, &ScaleState::identity(1));
    assert_eq!(result.assignment, vec![Parallelism::Model]);

    let large = NetworkCommTensors::from_layers(
        "fc3-b4096",
        4096,
        vec![hypar_comm::LayerCommTensors::fully_connected(
            "fc3", 4096, 4096, 1000,
        )],
    );
    let result = two_group::partition(&large, &ScaleState::identity(1));
    assert_eq!(result.assignment, vec![Parallelism::Data]);
}

#[test]
fn evaluate_plan_is_additive_over_levels() {
    let net = view("AlexNet", 256);
    let plan = hierarchical::partition(&net, 4);
    let cost = evaluate_plan(&net, plan.levels());
    let total: f64 = cost.weighted_level_elems().iter().sum();
    assert!((total - cost.total_elems()).abs() <= 1e-9 * total);
    assert_eq!(cost.per_level.len(), 4);
}

#[test]
fn hierarchical_partition_is_deterministic() {
    let net = view("VGG-E", 256);
    let a = hierarchical::partition(&net, 4);
    let b = hierarchical::partition(&net, 4);
    assert_eq!(a, b);
}

#[test]
fn zero_inter_layer_cost_iff_all_dp() {
    // dp-dp junctions are free; any mp choice at any level must introduce
    // junction or reduction traffic somewhere.
    let net = view("Lenet-c", 256);
    let dp = baselines::all_data(&net, 4);
    let cost = evaluate_plan(&net, dp.levels());
    for level in &cost.per_level {
        assert!(level.inter.iter().all(|&x| x == 0.0));
    }
    let hypar = hierarchical::partition(&net, 4);
    let cost = evaluate_plan(&net, hypar.levels());
    let any_inter = cost
        .per_level
        .iter()
        .any(|l| l.inter.iter().any(|&x| x > 0.0));
    assert!(any_inter, "Lenet-c's hybrid plan crosses layouts somewhere");
}
