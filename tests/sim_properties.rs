//! Property-based integration tests of the simulator: for arbitrary small
//! networks and arbitrary plans, the event-driven simulation must agree
//! with the analytic model and obey basic scheduling laws.

use hypar_comm::{NetworkCommTensors, Parallelism};
use hypar_core::{evaluate::evaluate_plan, HierarchicalPlan};
use hypar_models::{ConvSpec, Network, NetworkShapes, PoolSpec};
use hypar_sim::{training, ArchConfig, Topology};
use hypar_tensor::FeatureDims;
use proptest::prelude::*;

/// A random small network: a conv front (0..3 layers) and an fc tail
/// (1..3 layers) on a modest input.
fn arb_network() -> impl Strategy<Value = Network> {
    (
        proptest::collection::vec(
            (1u64..32, prop_oneof![Just(3u64), Just(5u64)], any::<bool>()),
            0..3,
        ),
        proptest::collection::vec(1u64..512, 1..3),
    )
        .prop_map(|(convs, fcs)| {
            let mut b = Network::builder("prop", FeatureDims::new(3, 32, 32));
            for (i, (ch, k, pool)) in convs.iter().enumerate() {
                b.conv(format!("conv{i}"), ConvSpec::same(*ch, *k));
                if *pool {
                    b.pool(PoolSpec::max2());
                }
            }
            for (i, out) in fcs.iter().enumerate() {
                b.fully_connected(format!("fc{i}"), *out);
            }
            b.build().expect("generated networks are valid")
        })
}

fn costed(net: &NetworkCommTensors, levels: Vec<Vec<Parallelism>>) -> HierarchicalPlan {
    let total = evaluate_plan(net, &levels).total_elems();
    HierarchicalPlan::from_parts(
        net.name(),
        net.layers().iter().map(|l| l.name.clone()).collect(),
        levels,
        total,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simulator's communicated bytes equal the analytic cost model's,
    /// for any plan.
    #[test]
    fn traffic_matches_model(net in arb_network(), seed in any::<u64>()) {
        let shapes = NetworkShapes::infer(&net, 16).expect("valid");
        let tensors = NetworkCommTensors::from_shapes(&shapes);
        let levels = 2usize;
        // Derive a pseudo-random plan from the seed.
        let plan_levels: Vec<Vec<Parallelism>> = (0..levels)
            .map(|h| {
                (0..tensors.len())
                    .map(|l| Parallelism::from_bit((seed >> (h * tensors.len() + l)) & 1 == 1))
                    .collect()
            })
            .collect();
        let plan = costed(&tensors, plan_levels);
        let report = training::simulate_step(&shapes, &plan, &ArchConfig::paper()).expect("plan matches the network");
        let model = plan.total_comm_bytes().value();
        prop_assert!((report.comm_bytes.value() - model).abs() <= 1e-6 * model.max(1.0));
    }

    /// Makespan is at least the compute lower bound (one accelerator's
    /// serial work) and overlap never makes it worse.
    #[test]
    fn makespan_bounds(net in arb_network(), plan_bits in any::<u64>()) {
        let shapes = NetworkShapes::infer(&net, 16).expect("valid");
        let tensors = NetworkCommTensors::from_shapes(&shapes);
        let levels = 2usize;
        let plan_levels: Vec<Vec<Parallelism>> = (0..levels)
            .map(|h| {
                (0..tensors.len())
                    .map(|l| Parallelism::from_bit((plan_bits >> (h * tensors.len() + l)) & 1 == 1))
                    .collect()
            })
            .collect();
        let plan = costed(&tensors, plan_levels);
        let cfg = ArchConfig::paper();
        let serial = training::simulate_step(&shapes, &plan, &cfg).expect("plan matches the network");
        let overlap = training::simulate_step(&shapes, &plan, &cfg.clone().with_overlap(true)).expect("plan matches the network");
        prop_assert!(overlap.step_time.value() <= serial.step_time.value() + 1e-12);
        // The busy time of an accelerator never exceeds the makespan.
        prop_assert!(serial.compute_busy.value() <= serial.step_time.value() + 1e-12);
        prop_assert!(serial.link_busy.value() <= serial.step_time.value() + 1e-12);
    }

    /// Energy is schedule-independent: topology and overlap change time,
    /// never joules or bytes.
    #[test]
    fn energy_is_schedule_independent(net in arb_network(), plan_bits in any::<u64>()) {
        let shapes = NetworkShapes::infer(&net, 8).expect("valid");
        let tensors = NetworkCommTensors::from_shapes(&shapes);
        let plan_levels: Vec<Vec<Parallelism>> = (0..2)
            .map(|h| {
                (0..tensors.len())
                    .map(|l| Parallelism::from_bit((plan_bits >> (h * tensors.len() + l)) & 1 == 1))
                    .collect()
            })
            .collect();
        let plan = costed(&tensors, plan_levels);
        let base = training::simulate_step(&shapes, &plan, &ArchConfig::paper()).expect("plan matches the network");
        for cfg in [
            ArchConfig::paper().with_topology(Topology::Torus),
            ArchConfig::paper().with_overlap(true),
        ] {
            let other = training::simulate_step(&shapes, &plan, &cfg).expect("plan matches the network");
            prop_assert_eq!(other.energy, base.energy);
            prop_assert_eq!(other.comm_bytes, base.comm_bytes);
            prop_assert_eq!(other.dram_bytes, base.dram_bytes);
        }
    }

    /// More hierarchy levels never increase the per-accelerator footprint.
    #[test]
    fn footprint_monotone_in_depth(net in arb_network()) {
        let shapes = NetworkShapes::infer(&net, 16).expect("valid");
        let tensors = NetworkCommTensors::from_shapes(&shapes);
        let cfg = ArchConfig::paper();
        let mut previous = f64::INFINITY;
        for levels in 0..4usize {
            let plan = hypar_core::hierarchical::partition(&tensors, levels);
            let report = training::simulate_step(&shapes, &plan, &cfg).expect("plan matches the network");
            prop_assert!(report.dram_footprint_bytes.value() <= previous + 1e-9);
            previous = report.dram_footprint_bytes.value();
        }
    }
}
