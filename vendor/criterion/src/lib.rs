//! Offline stand-in for [criterion]: a minimal wall-clock benchmark
//! harness exposing the same macro/type surface the workspace's benches
//! use (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`).
//!
//! Each benchmark runs a short warm-up followed by a timed batch and
//! prints the mean time per iteration. There is no statistical analysis,
//! plotting, or result persistence.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under the real crate's name.
pub use std::hint::black_box;

/// Target wall-clock time of one measured batch.
const BATCH_BUDGET: Duration = Duration::from_millis(200);

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single benchmark under the given name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A named identifier: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An identifier with both a function name and a parameter.
    #[must_use]
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An identifier carrying only a parameter.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId(name)
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stand-in sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.into().0), &mut f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.0), &mut |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in the stand-in).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iterations` runs of the routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up and calibration: one iteration to size the timed batch.
    let mut calibration = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calibration);
    let per_iter = calibration.elapsed.max(Duration::from_nanos(1));
    let iterations = (BATCH_BUDGET.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
    println!(
        "{name:<50} {:>14} /iter ({iterations} iters)",
        format_time(mean)
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
