//! Offline stand-in for [proptest]: deterministic property-based testing
//! with the subset of the real API this workspace uses.
//!
//! Differences from the real crate, by design:
//!
//! * generation is driven by a fixed-seed xorshift RNG keyed on the test
//!   name, so runs are fully deterministic;
//! * there is no shrinking — a failing case panics with the values that
//!   produced it (via the standard assert messages);
//! * only the combinators the workspace uses exist: ranges, tuples,
//!   [`Just`], [`prop_oneof!`], [`collection::vec`], [`any`], and
//!   [`Strategy::prop_map`].

#![forbid(unsafe_code)]

use std::ops::Range;

/// Re-exports matching `proptest::prelude::*` in the real crate.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Configuration knobs, matching `proptest::test_runner::Config`.
pub mod test_runner {
    /// How a `proptest!` block runs its cases.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to execute per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 128 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// The deterministic RNG driving the stand-in (xorshift64*).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator seeded from the test's name, so every run of a given
    /// test sees the same sequence.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name; avoid the all-zero state.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The combinator behind [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The combinator behind [`prop_oneof!`]: picks one of the options
/// uniformly.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over the given options.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = u64::from(self.end as u64 - self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

int_range_strategy!(u8, u16, u32);

impl Strategy for Range<i32> {
    type Value = i32;

    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty range strategy");
        let span = i64::from(self.end) - i64::from(self.start);
        (i64::from(self.start) + rng.below(span as u64) as i64) as i32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Clone, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (`any::<bool>()`, `any::<u64>()`, …).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declares deterministic property tests; mirrors the real macro's shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..__cfg.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under the real crate's name (no shrinking in the stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// `assert_eq!` under the real crate's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// `assert_ne!` under the real crate's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

/// Picks uniformly among the listed strategies (all of one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$(::std::boxed::Box::new($option)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = crate::Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn determinism_per_test_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_surface_works(
            n in 1u64..100,
            flag in any::<bool>(),
            pick in prop_oneof![Just(1u32), Just(2)],
            v in crate::collection::vec((0u64..5, any::<bool>()), 0..4),
        ) {
            prop_assert!((1..100).contains(&n));
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!(pick == 1 || pick == 2);
            prop_assert!(v.len() < 4, "len {}", v.len());
        }

        #[test]
        fn prop_map_composes(sum in (1u64..10, 1u64..10).prop_map(|(a, b)| a + b)) {
            prop_assert!((2..19).contains(&sum));
        }
    }
}
