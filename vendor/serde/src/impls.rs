//! `Serialize`/`Deserialize` implementations for primitives and standard
//! containers.

use std::collections::{BTreeMap, HashMap};

use crate::{DeError, Deserialize, Serialize, Value};

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::U64(*self)
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_u64()
            .ok_or_else(|| DeError::expected("unsigned integer", v))
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = v
            .as_u64()
            .ok_or_else(|| DeError::expected("unsigned integer", v))?;
        usize::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range for usize")))
    }
}

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|n| n as f32)
            .ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }

    fn if_missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| DeError::custom(format!("expected {N} elements, got {}", items.len())))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::expected("2-element array", v)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(DeError::expected("3-element array", v)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        fields
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output, as real serde_json does not, but
        // every consumer in this workspace expects stable text.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        fields
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}
