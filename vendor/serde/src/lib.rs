//! Offline stand-in for [serde](https://serde.rs).
//!
//! The build environment has no network access, so this crate implements
//! the subset of serde's surface that the HyPar workspace actually uses:
//! the [`Serialize`] / [`Deserialize`] traits (over a concrete [`Value`]
//! tree instead of the real crate's visitor machinery) and the
//! `#[derive(Serialize, Deserialize)]` macros re-exported from the
//! companion `serde_derive` stand-in.
//!
//! Supported shapes match what the workspace derives: named-field structs,
//! newtype/tuple structs, unit-variant enums, and newtype-variant enums
//! (externally tagged, like real serde). `#[serde(...)]` attributes and
//! generic types are intentionally not supported.

#![forbid(unsafe_code)]

mod impls;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

use std::fmt;

/// A deserialization error: a human-readable message, optionally wrapped
/// with field/type context as it propagates outward.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// An error with a custom message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// A required field was absent from the object being deserialized.
    #[must_use]
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError(format!("missing field `{field}` for `{ty}`"))
    }

    /// The value had the wrong JSON type.
    #[must_use]
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }

    /// Wraps the error with the field it occurred in.
    #[must_use]
    pub fn in_field(self, field: &str) -> Self {
        DeError(format!("{field}: {}", self.0))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Value`] tree.
///
/// The stand-in's analogue of `serde::Serialize`; the derive macro
/// implements it field by field.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// The value to use when a struct field is absent. `None` makes the
    /// field required; `Option<T>` overrides this to `Some(None)` so that
    /// optional fields may be omitted (as with real serde defaults).
    #[doc(hidden)]
    fn if_missing() -> Option<Self> {
        None
    }
}

/// Support function for derived `Deserialize` impls: resolves an absent
/// struct field, erroring unless the field type tolerates omission.
///
/// # Errors
///
/// Returns [`DeError::missing_field`] when `T` has no absent-value.
#[doc(hidden)]
pub fn __missing_field<T: Deserialize>(field: &str, ty: &str) -> Result<T, DeError> {
    T::if_missing().ok_or_else(|| DeError::missing_field(field, ty))
}
