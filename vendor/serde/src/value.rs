//! The concrete data model the stand-in (de)serializes through.

/// A JSON-shaped value tree.
///
/// Objects preserve insertion order (serialization output is deterministic
/// and mirrors struct declaration order); lookup is a linear scan, which is
/// fine at the object sizes this workspace produces.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short name of the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks a key up in an object (`None` for non-objects and absent keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's key/value pairs, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A numeric view of any number variant.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            Value::F64(n) => Some(*n),
            _ => None,
        }
    }

    /// A `u64` view, when the number is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            Value::F64(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// An `i64` view, when the number is an integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::U64(n) => i64::try_from(*n).ok(),
            Value::I64(n) => Some(*n),
            Value::F64(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// Whether this is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}
