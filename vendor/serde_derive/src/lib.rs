//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored value-tree `serde` crate, without `syn`/`quote`: the input
//! token stream is walked by hand and the impl is emitted as a string.
//!
//! Supported type shapes (everything the workspace derives on):
//!
//! * named-field structs (any field visibility),
//! * tuple structs — one field serializes as the inner value (serde's
//!   newtype convention), more fields as an array,
//! * unit structs,
//! * enums with unit variants (externally tagged as a string) and newtype
//!   variants (externally tagged as a single-key object).
//!
//! Generics, struct variants, and `#[serde(...)]` attributes are rejected
//! with a compile-time panic, matching how far the stand-in needs to go.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// One parsed derive input.
struct Input {
    name: String,
    shape: Shape,
}

enum Shape {
    /// Named-field struct: field names in declaration order.
    NamedStruct(Vec<String>),
    /// Tuple struct with the given arity.
    TupleStruct(usize),
    /// Unit struct.
    UnitStruct,
    /// Enum: `(variant name, has newtype payload)`.
    Enum(Vec<(String, bool)>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{pairs}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::TupleStruct(arity) => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Shape::UnitStruct => "::serde::Value::Null".to_owned(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, newtype)| {
                    if *newtype {
                        format!(
                            "{name}::{v}(inner) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Serialize::to_value(inner))]),"
                        )
                    } else {
                        format!(
                            "{name}::{v} => \
                             ::serde::Value::String(::std::string::String::from(\"{v}\")),"
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: match v.get(\"{f}\") {{\n\
                             ::std::option::Option::Some(field) => \
                                 ::serde::Deserialize::from_value(field)\
                                 .map_err(|e| e.in_field(\"{f}\"))?,\n\
                             ::std::option::Option::None => \
                                 ::serde::__missing_field(\"{f}\", \"{name}\")?,\n\
                         }},"
                    )
                })
                .collect();
            format!(
                "if v.as_object().is_none() {{\n\
                     return ::std::result::Result::Err(\
                         ::serde::DeError::expected(\"object for `{name}`\", v));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(arity) => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "let items = v.as_array()\
                     .ok_or_else(|| ::serde::DeError::expected(\"array for `{name}`\", v))?;\n\
                 if items.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::DeError::custom(\
                         \"wrong tuple arity for `{name}`\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({items}))"
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, newtype)| !newtype)
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let newtype_arms: String = variants
                .iter()
                .filter(|(_, newtype)| *newtype)
                .map(|(v, _)| {
                    format!(
                        "if let ::std::option::Option::Some(inner) = v.get(\"{v}\") {{\n\
                             return ::std::result::Result::Ok(\
                                 {name}::{v}(::serde::Deserialize::from_value(inner)?));\n\
                         }}"
                    )
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::DeError::custom(\
                             ::std::format!(\"unknown variant `{{other}}` for `{name}`\"))),\n\
                     }},\n\
                     _ => {{\n\
                         {newtype_arms}\n\
                         ::std::result::Result::Err(\
                             ::serde::DeError::expected(\"variant of `{name}`\", v))\n\
                     }}\n\
                 }}"
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    );
    out.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn parse(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute (doc comment etc.): swallow the bracket group.
                let _ = tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Swallow a `pub(...)` restriction if present.
                if matches!(
                    tokens.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    let _ = tokens.next();
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                return parse_struct(&mut tokens);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                return parse_enum(&mut tokens);
            }
            other => panic!("serde stand-in: unexpected token {other:?} before struct/enum"),
        }
    }
}

fn parse_name(tokens: &mut Tokens) -> String {
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in: expected type name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in: generic type `{name}` is not supported");
    }
    name
}

fn parse_struct(tokens: &mut Tokens) -> Input {
    let name = parse_name(tokens);
    let shape = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
        other => panic!("serde stand-in: unexpected struct body {other:?}"),
    };
    Input { name, shape }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        // Skip attributes and visibility before the field name.
        match tokens.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let _ = tokens.next();
                let _ = tokens.next();
                continue;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                let _ = tokens.next();
                if matches!(
                    tokens.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    let _ = tokens.next();
                }
                continue;
            }
            _ => {}
        }
        match tokens.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            other => panic!("serde stand-in: expected field name, got {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stand-in: expected `:` after field, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    let _ = tokens.next();
                    break;
                }
                _ => {}
            }
            let _ = tokens.next();
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut pending = false;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += usize::from(pending);
                pending = false;
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    fields + usize::from(pending)
}

fn parse_enum(tokens: &mut Tokens) -> Input {
    let name = parse_name(tokens);
    let Some(TokenTree::Group(body)) = tokens.next() else {
        panic!("serde stand-in: expected enum body for `{name}`");
    };
    let mut tokens = body.stream().into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        match tokens.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let _ = tokens.next();
            }
            Some(TokenTree::Ident(id)) => {
                let newtype = match tokens.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let _ = tokens.next();
                        true
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        panic!("serde stand-in: struct variant `{id}` is not supported")
                    }
                    _ => false,
                };
                variants.push((id.to_string(), newtype));
                if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    let _ = tokens.next();
                }
            }
            other => panic!("serde stand-in: unexpected token in enum body: {other:?}"),
        }
    }
    Input {
        name,
        shape: Shape::Enum(variants),
    }
}
