//! Offline stand-in for [serde_json]: JSON text ↔ the vendored `serde`
//! value model.
//!
//! Covers the entry points this workspace uses: [`to_value`],
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`from_value`], and
//! the re-exported [`Value`] type.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{DeError, Deserialize, Serialize};

pub use serde::Value;

/// A serialization or deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn parse(msg: impl Into<String>, offset: usize) -> Self {
        Error(format!("{} at byte {offset}", msg.into()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(err: DeError) -> Self {
        Error(err.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Infallible for the value model this stand-in supports; the `Result` is
/// kept for call-site compatibility with the real crate.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a value from a [`Value`] tree.
///
/// # Errors
///
/// Returns an error when the tree's shape does not match `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Serializes to compact JSON text.
///
/// # Errors
///
/// Infallible for the supported value model (kept for compatibility).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON text (two-space indentation).
///
/// # Errors
///
/// Infallible for the supported value model (kept for compatibility).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns an error on malformed JSON, trailing input, or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::parse("trailing characters", parser.pos));
    }
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                out.push_str(&n.to_string());
            } else {
                // Real serde_json refuses non-finite floats; emitting null
                // keeps the output parseable instead of erroring.
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            ('[', ']'),
            |out, v, d| {
                write_value(out, v, indent, d);
            },
        ),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            fields.len(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, v), d| {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, d);
            },
        ),
    }
}

fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Maximum container nesting depth the parser accepts.
///
/// The parser is recursive, so adversarial input like ten thousand `[`
/// bytes would otherwise overflow the thread stack (an abort, not a
/// catchable error) before any shape validation sees it.  128 levels is
/// far beyond any structure this workspace serializes; deeper input is a
/// parse error like any other malformed document.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn eat_literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::parse("unexpected end of input", self.pos)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::parse(
                format!("unexpected character `{}`", other as char),
                self.pos,
            )),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::parse(
                format!("nesting deeper than {MAX_DEPTH} levels"),
                self.pos,
            ));
        }
        Ok(())
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::parse("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut pending_high_surrogate: Option<u16> = None;
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::parse("unterminated string", self.pos));
            };
            self.pos += 1;
            if b != b'\\' && pending_high_surrogate.is_some() {
                return Err(Error::parse("unpaired surrogate", self.pos));
            }
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::parse("unterminated escape", self.pos));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            if let Some(high) = pending_high_surrogate.take() {
                                if (0xDC00..=0xDFFF).contains(&code) {
                                    let c = 0x10000
                                        + (u32::from(high - 0xD800) << 10)
                                        + u32::from(code - 0xDC00);
                                    out.push(char::from_u32(c).expect("valid surrogate pair"));
                                } else {
                                    return Err(Error::parse("unpaired surrogate", self.pos));
                                }
                            } else if (0xD800..=0xDBFF).contains(&code) {
                                pending_high_surrogate = Some(code);
                            } else if let Some(c) = char::from_u32(u32::from(code)) {
                                out.push(c);
                            } else {
                                return Err(Error::parse("invalid unicode escape", self.pos));
                            }
                        }
                        other => {
                            return Err(Error::parse(
                                format!("invalid escape `\\{}`", other as char),
                                self.pos,
                            ))
                        }
                    }
                }
                _ if b < 0x80 => out.push(b as char),
                _ => {
                    // Re-decode the multi-byte UTF-8 sequence starting at
                    // the byte we just consumed.  Validate a window of at
                    // most 4 bytes (the longest UTF-8 sequence), never the
                    // whole remaining input — per-character tail scans
                    // would make string parsing quadratic, a DoS vector
                    // for megabyte-scale adversarial requests.
                    let start = self.pos - 1;
                    let end = (start + 4).min(self.bytes.len());
                    let window = &self.bytes[start..end];
                    let c = match std::str::from_utf8(window) {
                        Ok(text) => text.chars().next().expect("non-empty"),
                        // A valid sequence may sit before an unrelated
                        // partial one at the window's edge.
                        Err(err) if err.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..err.valid_up_to()])
                                .expect("validated prefix")
                                .chars()
                                .next()
                                .expect("non-empty")
                        }
                        Err(_) => return Err(Error::parse("invalid utf-8", start)),
                    };
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::parse("truncated \\u escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        let code = u16::from_str_radix(hex, 16)
            .map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        // `-0` must stay a float: integers cannot carry the sign bit, and
        // round-tripping `F64(-0.0)` bit-exactly matters to the engine's
        // replay logs and state hashes.
        if !is_float && text != "-0" {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::parse(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
        assert_eq!(to_string(&42u64).unwrap(), "42");
    }

    #[test]
    fn round_trips_containers() {
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let val: Value = from_str(r#"{"a": [1, {"b": null}], "c": -3.505e2}"#).unwrap();
        assert_eq!(val.get("c").and_then(Value::as_f64), Some(-350.5));
        let text = to_string(&val).unwrap();
        let again: Value = from_str(&text).unwrap();
        assert_eq!(again, val);
    }

    #[test]
    fn pretty_printing_indents() {
        let val: Value = from_str(r#"{"a":[1,2]}"#).unwrap();
        let pretty = to_string_pretty(&val).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 x").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }

    #[test]
    fn integers_survive_exactly() {
        let n = u64::MAX;
        let text = to_string(&n).unwrap();
        assert_eq!(from_str::<u64>(&text).unwrap(), n);
    }

    #[test]
    fn negative_zero_survives_bit_exactly() {
        let text = to_string(&-0.0f64).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back.to_bits(), (-0.0f64).to_bits(), "{text} -> {back}");
        // Plain zero still parses as an integer.
        assert_eq!(from_str::<Value>("0").unwrap(), Value::U64(0));
    }

    #[test]
    fn nesting_beyond_max_depth_is_an_error_not_a_stack_overflow() {
        let deep_ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(from_str::<Value>(&deep_ok).is_ok());

        let too_deep = format!(
            "{}0{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = from_str::<Value>(&too_deep).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");

        // The pathological case: tens of thousands of unclosed openers
        // must error out, not abort the process.
        let bomb = "[".repeat(100_000);
        assert!(from_str::<Value>(&bomb).is_err());
        let obj_bomb = "{\"k\":".repeat(100_000);
        assert!(from_str::<Value>(&obj_bomb).is_err());
    }

    #[test]
    fn long_strings_parse_in_linear_time() {
        // 4 MB of string (with multi-byte chars mixed in) must parse in
        // well under a second; the old per-char tail validation was
        // quadratic and took minutes.
        let body = "xé☃".repeat(512 << 10);
        let text = to_string(&body).unwrap();
        let started = std::time::Instant::now();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, body);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn multibyte_and_escape_decoding_is_exact() {
        let cases = [
            ("\"héllo ☃\"", "héllo ☃"),
            ("\"\\ud83d\\ude00\"", "😀"),
            ("\"𝄞 clef\"", "𝄞 clef"),
        ];
        for (text, expected) in cases {
            assert_eq!(from_str::<String>(text).unwrap(), expected, "{text}");
        }
        // A multi-byte char right at the end of input decodes from a
        // window clipped by the input boundary.
        assert_eq!(from_str::<String>("\"é\"").unwrap(), "é");
    }

    #[test]
    fn sibling_containers_do_not_accumulate_depth() {
        // Depth is nesting, not container count: a long flat array of
        // shallow objects stays parseable.
        let flat = format!("[{}{{}}]", "{},".repeat(10_000));
        assert!(from_str::<Value>(&flat).is_ok());
    }
}
